//! The system driver, decomposed into a layered protocol stack.
//!
//! CVM "was created specifically as a platform for protocol
//! experimentation"; this module keeps that property by separating the
//! *mechanism* every protocol shares from the *policy* each protocol
//! defines. The layers, and what each may call:
//!
//! ```text
//!  run loop (mod.rs)
//!     │  polls network + event queue, routes to:
//!     ├─► transport dispatch (transport.rs)
//!     │      send / send_remote, typed payload handlers
//!     │      ├─► sync services          (lock/barrier/reduce payloads)
//!     │      └─► Coherence::on_message  (data payloads)
//!     └─► scheduler (scheduler.rs)
//!            run queues, wait classes, thread-switch accounting
//!            ├─► sync services          (acquire/release/barrier blocks)
//!            └─► Coherence::on_fault    (page-fault blocks)
//!
//!  sync services (sync.rs)
//!     lock manager, barrier master, reductions, startup/end-measure
//!     └─► coherence mechanism (close_interval, apply_notices, merge)
//!
//!  coherence engine (coherence.rs)
//!     Coherence trait + shared mechanism (twins, diffs, intervals,
//!     notices, fetch assembly) — policy impls in:
//!        lazy.rs   (LazyMultiWriter: invalidate, pull diffs on fault)
//!        eager.rs  (EagerUpdate: push diffs to copysets at close)
//!        home.rs   (HomeLazy: flush diffs to a home, pull whole pages)
//!
//!  report assembly (report.rs)
//!     reads every layer's counters; calls nothing
//! ```
//!
//! The scheduler, sync and transport layers never branch on
//! [`ProtocolKind`](crate::ProtocolKind): the single point where the kind
//! is consulted is [`make_protocol`], which picks the [`Coherence`] impl
//! for the run. See `DESIGN.md` at the repository root for the layer map
//! and a guide to writing a new protocol.

mod coherence;
mod eager;
mod home;
mod lazy;
mod parallel;
mod report;
mod scheduler;
mod sync;
#[cfg(test)]
mod tests;
mod transport;

pub use coherence::Coherence;

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cvm_net::NetworkSim;
use cvm_sim::coop::{CoopScheduler, CoopThreadId, Yielder};
use cvm_sim::sync::Mutex;
use cvm_sim::{
    ExploreSchedule, Fnv64, ScriptCursor, ShardMap, ShardedEventQueue, SimDuration, SimRng,
    StepLog, VirtualTime,
};

use cvm_memsim::MemSystem;

use crate::attr::ResourceAttr;
use crate::barrier::{BarrierMaster, LocalBarrier, NodeBarrier, ReduceOp};
use crate::config::CvmConfig;
use crate::ctx::{BlockReason, CtxCosts, ThreadCtx};
use crate::diff::Diff;
use crate::hist::DsmHistograms;
use crate::interval::{IntervalLog, VectorTime};
use crate::lock::{LockLocal, LockManager};
use crate::msg::Payload;
use crate::node::NodeCell;
use crate::oracle::{InjectFault, Invariant, Oracle};
use crate::page::{PageId, PageState};
use crate::protocol::ProtocolKind;
use crate::report::{NodeBreakdown, RunReport};
use crate::sched::NodeSched;
use crate::shared::{Shareable, SharedMat, SharedVec};
use crate::span::SpanForest;
use crate::stats::DsmStats;
use crate::trace::Trace;

use coherence::PendingFetch;
use eager::EagerUpdate;
use home::HomeLazy;
use lazy::LazyMultiWriter;

/// Builder for a CVM system: allocate shared memory, then run an SPMD
/// application. See the crate-level example.
#[derive(Debug)]
pub struct CvmBuilder {
    cfg: CvmConfig,
    next_addr: u64,
}

impl CvmBuilder {
    /// Starts building a system under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CvmConfig) -> Self {
        Invariant::ConfigPositive.require(cfg.nodes > 0 && cfg.threads_per_node > 0, || {
            format!(
                "need at least one node and one thread per node, got {}x{}",
                cfg.nodes, cfg.threads_per_node
            )
        });
        CvmBuilder { cfg, next_addr: 0 }
    }

    /// The configuration being built.
    pub fn config(&self) -> &CvmConfig {
        &self.cfg
    }

    /// Allocates a shared array of `len` elements, page-aligned so that
    /// independent arrays never share pages.
    pub fn alloc<T: Shareable>(&mut self, len: usize) -> SharedVec<T> {
        let base = self.next_addr;
        let bytes = (len * T::SIZE) as u64;
        let ps = self.cfg.page_size as u64;
        self.next_addr = (base + bytes).div_ceil(ps) * ps;
        SharedVec::from_raw(base, len)
    }

    /// Allocates a shared row-major matrix.
    pub fn alloc_mat<T: Shareable>(&mut self, rows: usize, cols: usize) -> SharedMat<T> {
        let v = self.alloc::<T>(rows * cols);
        let _ = v;
        // Recompute the base the alloc used.
        let bytes = (rows * cols * T::SIZE) as u64;
        let ps = self.cfg.page_size as u64;
        let base = self.next_addr - bytes.div_ceil(ps) * ps;
        SharedMat::from_raw(base, rows, cols)
    }

    /// Runs the SPMD application `app` on every thread and returns the run
    /// report. Statistics cover the portion after
    /// [`startup_done`](crate::ThreadCtx::startup_done) (or the whole run
    /// if it is never called).
    ///
    /// # Panics
    ///
    /// Panics if an application thread panics, or on protocol deadlock
    /// (threads blocked with no pending events — an application
    /// synchronization bug).
    pub fn run<F>(mut self, app: F) -> RunReport
    where
        F: Fn(&mut ThreadCtx<'_>) + Send + Sync + 'static,
    {
        self.cfg.segment_size = (self.next_addr as usize)
            .div_ceil(self.cfg.page_size)
            .max(1)
            * self.cfg.page_size;
        self.cfg.validate();
        let mut driver = Driver::new(self.cfg, Arc::new(app));
        driver.run()
    }
}

/// Events in the driver's own queue (network events live in `cvm-net`).
#[derive(Debug, Clone, Copy)]
enum MainEvent {
    /// The node should schedule its next ready thread.
    NodeResume(usize),
    /// A thread's `sleep_until` deadline arrived: make `(node, tid)`
    /// ready again. Keyed by the node, so it shares the node's event
    /// shard and the window planner's shard-head check naturally refuses
    /// to pre-start bursts past a pending wake.
    ThreadWake(usize, usize),
}

/// Driver-private per-node control state.
struct NodeCtl {
    sched: NodeSched,
    locks: Vec<LockLocal>,
    nb: NodeBarrier,
    lb: LocalBarrier,
    /// Node-local aggregation for global reductions.
    gred: LocalBarrier,
    vt: VectorTime,
    log: IntervalLog,
    /// Per writer: interval → pages (everything this node has learned).
    notice_store: Vec<BTreeMap<u32, Vec<PageId>>>,
    /// Page → un-applied write notices `(writer, interval)`.
    pending: HashMap<usize, Vec<(usize, u32)>>,
    /// `(page, writer)` → highest applied diff tag (diff-tag namespace,
    /// used as the `since` filter for diff requests).
    applied_dtag: HashMap<(usize, usize), u32>,
    /// `(page, writer)` → highest *interval* of the writer known to be
    /// reflected in our copy (used to retire write notices). Never runs
    /// ahead of the writer's actually-closed intervals.
    applied_ivl: HashMap<(usize, usize), u32>,
    fetches: HashMap<usize, PendingFetch>,
    /// This node's own diffs: page → `(tag, close gseq, diff)` ascending.
    diff_cache: HashMap<usize, Vec<(u32, u64, Diff)>>,
    /// Page → global sequence of its most recent interval close here.
    page_close_gseq: HashMap<usize, u64>,
    /// Page → highest close gseq whose diff is reflected in our copy.
    /// Push-style protocols consult this to refuse a diff arriving after
    /// a causally later one (the network reorders across message sizes);
    /// the refused diff is recovered through the notice/refault path.
    applied_gseq: HashMap<usize, u64>,
    /// Eager-update only: page → (word index → close gseq of the last
    /// diff known to write that word — applied here, or our own). Lets a
    /// writer compute a new diff's causal `base` from true word overlap
    /// rather than the whole-page watermark, which would impose false
    /// dependencies between word-disjoint concurrent diffs of
    /// multi-writer pages.
    word_ver: HashMap<usize, HashMap<usize, u64>>,
    out_faults: usize,
    out_locks: usize,
    /// Latest barrier-release epoch applied (filters stale duplicate
    /// releases in the non-aggregated ablation mode).
    release_seen: u32,
    breakdown: NodeBreakdown,
    /// Bytes currently held in `diff_cache` (modelled wire size).
    cache_bytes: u64,
    /// High-water mark of `cache_bytes`.
    cache_peak: u64,
}

impl NodeCtl {
    fn new(nodes: usize, n_locks: usize, threads_per_node: usize) -> Self {
        NodeCtl {
            sched: NodeSched::new(threads_per_node),
            locks: (0..n_locks).map(|_| LockLocal::default()).collect(),
            nb: NodeBarrier::default(),
            lb: LocalBarrier::default(),
            gred: LocalBarrier::default(),
            vt: VectorTime::new(nodes),
            log: IntervalLog::new(),
            notice_store: vec![BTreeMap::new(); nodes],
            pending: HashMap::new(),
            applied_dtag: HashMap::new(),
            applied_ivl: HashMap::new(),
            fetches: HashMap::new(),
            diff_cache: HashMap::new(),
            page_close_gseq: HashMap::new(),
            applied_gseq: HashMap::new(),
            word_ver: HashMap::new(),
            out_faults: 0,
            out_locks: 0,
            release_seen: 0,
            breakdown: NodeBreakdown::default(),
            cache_bytes: 0,
            cache_peak: 0,
        }
    }

    fn applied_dtag(&self, page: usize, writer: usize) -> u32 {
        self.applied_dtag.get(&(page, writer)).copied().unwrap_or(0)
    }

    fn applied_ivl(&self, page: usize, writer: usize) -> u32 {
        self.applied_ivl.get(&(page, writer)).copied().unwrap_or(0)
    }

    /// Records that the words `d` writes now reflect the diff closed at
    /// `gseq` (eager-update only).
    fn note_words(&mut self, page: usize, d: &Diff, gseq: u64) {
        let vers = self.word_ver.entry(page).or_default();
        for w in d.words() {
            let e = vers.entry(w).or_insert(0);
            *e = (*e).max(gseq);
        }
    }

    /// Highest close sequence among diffs known to write any word that
    /// `d` also writes — the overlap causal base (eager-update only).
    fn word_base(&self, page: usize, d: &Diff) -> u64 {
        let Some(vers) = self.word_ver.get(&page) else {
            return 0;
        };
        d.words()
            .map(|w| vers.get(&w).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }
}

/// How many global locks exist (a static table, as in CVM).
pub const MAX_LOCKS: usize = 4096;

struct ThreadInfo {
    node: usize,
    coop: CoopThreadId,
    finished: bool,
}

/// The protocol-independent mechanism state: cluster cells, per-node
/// control state, scheduler queues, network, sync services and
/// measurement sinks. [`Coherence`] impls receive `&mut DriverCore` at
/// each hook point and drive the run through its `pub(super)` methods;
/// outside the driver the type is opaque.
pub struct DriverCore {
    cfg: CvmConfig,
    cells: Vec<Arc<Mutex<NodeCell>>>,
    ctl: Vec<NodeCtl>,
    threads: Vec<ThreadInfo>,
    coop: CoopScheduler<BlockReason>,
    net: NetworkSim<Payload>,
    mainq: ShardedEventQueue<MainEvent>,
    /// Conservative lookahead floor of the latency model (cached): no
    /// message sent at `t` can affect its destination before
    /// `t + lookahead`.
    lookahead: SimDuration,
    /// Per shard: a burst the window planner pre-started, `(node, tid)`,
    /// awaiting consumption by that node's next `NodeResume`.
    planned: Vec<Option<(usize, usize)>>,
    /// Number of pre-started bursts currently in flight.
    planned_n: usize,
    /// Scratch for the planner: per-node earliest pending delivery time.
    floors: Vec<VirtualTime>,
    /// Parallel burst pre-execution is active (`shards > 1` and no
    /// replay/observation channel that pins the sequential loop).
    par_enabled: bool,
    /// Bursts the planner pre-started over the whole run (host-side
    /// observability: varies with `--shards`, never enters the JSON).
    planned_bursts: u64,
    /// Total burst time consumed by every application burst, in ns
    /// (host-side observability, same caveats as `planned_bursts`).
    burst_total_ns: u64,
    /// Burst time the planner took off the critical path: for each
    /// lookahead window, `sum(bursts) - max(bursts)` — the host time a
    /// machine with one core per shard would not have to serialize.
    overlap_saved_ns: u64,
    /// Current window's burst-time accumulators (sum, max), folded into
    /// `overlap_saved_ns` when the last in-flight burst is collected.
    win_sum_ns: u64,
    win_max_ns: u64,
    /// Per node: `twin_bytes_live` as last observed at a sequential
    /// sample point (end of `run_node`, end of a handler). Caching the
    /// per-node values lets the cluster-wide sum be maintained in O(1)
    /// per sample instead of a sweep over every cell.
    twin_live_seen: Vec<u64>,
    /// Sum of `twin_live_seen`: cluster-wide live twin bytes.
    twin_live_sum: u64,
    /// High-water mark of `twin_live_sum` — the whole-run twin peak.
    twin_global_peak: u64,
    /// Cluster-wide live diff-cache bytes (sum of `NodeCtl::cache_bytes`).
    cache_live_sum: u64,
    /// High-water mark of `cache_live_sum`.
    cache_global_peak: u64,
    lock_mgrs: Vec<LockManager>,
    master: BarrierMaster,
    stats: DsmStats,
    startup_arrived: usize,
    endm_arrived: usize,
    /// Master-side global-reduction episode: arrivals and accumulator.
    gred_count: usize,
    gred_acc: Option<f64>,
    gred_op: Option<ReduceOp>,
    snapshot: Option<RunReport>,
    finished_total: usize,
    /// Global interval-close sequence: a total order consistent with
    /// happens-before, used to order diff application (stands in for the
    /// vector-timestamp comparison of the real protocol).
    gseq: u64,
    /// Protocol event trace (capacity 0 = disabled).
    trace: Trace,
    /// Latency/size distributions (always on).
    hist: DsmHistograms,
    /// Per-page / per-lock attribution (always on).
    attr: ResourceAttr,
    /// `(node, lock)` → when the node's remote request left (histogram
    /// sample start, consumed at the grant).
    lock_req_at: HashMap<(usize, usize), VirtualTime>,
    /// `(lock, acquirer)` → hop count the manager decided for the grant
    /// in flight (2 = manager owned the token, 3 = forwarded to owner).
    lock_hops: HashMap<(usize, usize), u8>,
    /// Per node: first arrival time of the current barrier episode.
    barrier_arrived_at: Vec<Option<VirtualTime>>,
    /// Causal span forest (`cfg.spans` gates recording).
    spans: SpanForest,
    /// Ambient span context: the span of the message being handled (or
    /// of the operation being driven), stamped onto outgoing messages.
    cur_span: u64,
    /// Page → span that invalidated it, linking the
    /// notice→refault→pull recovery chain into one causal tree.
    page_cause: HashMap<usize, u64>,
    /// Per node: the open Barrier span of the current episode (0 none).
    barrier_span: Vec<u64>,
    /// Per node: the open Reduce span of the current episode (0 none).
    reduce_span: Vec<u64>,
    /// `(node, lock)` → open LockAcquire span awaiting its grant.
    lock_span: HashMap<(usize, usize), u64>,
    /// Invariant checker: panics on violation normally, records findings
    /// under `cfg.verify`.
    oracle: Oracle,
    /// Seeded scheduler perturbation, when exploring.
    explore: Option<ExploreSchedule>,
    /// Scripted scheduler picks (the model checker's replay channel);
    /// takes precedence over `explore`.
    script: Option<ScriptCursor>,
    /// Scheduling-point log, when `cfg.record_steps`.
    steps: Option<StepLog>,
    /// Occurrences of the configured injection's fault site seen so far
    /// (the injection corrupts occurrence `nth` only).
    inject_seen: u64,
}

/// Step-log capacity: far above any tiny-kernel run, bounded so a
/// misconfigured paper-scale run cannot exhaust host memory.
const STEP_LOG_CAP: usize = 1 << 20;

impl std::fmt::Debug for DriverCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverCore")
            .field("nodes", &self.cfg.nodes)
            .field("threads", &self.threads.len())
            .field("finished_total", &self.finished_total)
            .finish_non_exhaustive()
    }
}

/// The assembled system: the shared mechanism plus the protocol policy
/// selected by [`make_protocol`].
struct Driver {
    core: DriverCore,
    proto: Box<dyn Coherence>,
}

type AppFn = Arc<dyn Fn(&mut ThreadCtx<'_>) + Send + Sync>;

/// The single place where [`ProtocolKind`] selects behaviour: every other
/// layer goes through the [`Coherence`] trait object this returns.
fn make_protocol(kind: ProtocolKind) -> Box<dyn Coherence> {
    match kind {
        ProtocolKind::LazyMultiWriter => Box::new(LazyMultiWriter),
        ProtocolKind::EagerUpdate => Box::new(EagerUpdate::default()),
        ProtocolKind::HomeLazy => Box::new(HomeLazy::default()),
    }
}

impl Driver {
    fn new(cfg: CvmConfig, app: AppFn) -> Self {
        let nodes = cfg.nodes;
        let tpn = cfg.threads_per_node;
        let pages = cfg.pages();
        let mut rng = SimRng::seed_from(cfg.seed);
        let cells: Vec<Arc<Mutex<NodeCell>>> = (0..nodes)
            .map(|_| {
                let mem = cfg.memsim_enabled.then(|| MemSystem::new(cfg.mem));
                Arc::new(Mutex::new(NodeCell::new(cfg.page_size, pages, mem)))
            })
            .collect();
        // Node 0 performs initialization: its pages start writable.
        {
            let mut c0 = cells[0].lock();
            for s in &mut c0.state {
                *s = PageState::ReadWrite;
            }
        }
        let mut ctl: Vec<NodeCtl> = (0..nodes)
            .map(|_| NodeCtl::new(nodes, MAX_LOCKS, tpn))
            .collect();
        let lock_mgrs: Vec<LockManager> = (0..MAX_LOCKS)
            .map(|l| LockManager::new(l % nodes))
            .collect();
        for (l, mgr) in lock_mgrs.iter().enumerate() {
            ctl[mgr.tail].locks[l].cached = true;
        }
        let costs = CtxCosts {
            page_size: cfg.page_size,
            access_base_ns: cfg.access_base.as_ns(),
            signal_ns: cfg.signal.as_ns(),
            mprotect_ns: cfg.mprotect.as_ns(),
            twin_copy_ns: cfg.twin_copy.as_ns(),
            code_pages: cfg.code_pages,
        };
        let mut coop: CoopScheduler<BlockReason> = CoopScheduler::new();
        let mut threads = Vec::with_capacity(nodes * tpn);
        // Index loop intentional: `node` is both an id stored in thread
        // info and an index into `cells`.
        #[allow(clippy::needless_range_loop)]
        for node in 0..nodes {
            for local in 0..tpn {
                let gid = node * tpn + local;
                let cell = Arc::clone(&cells[node]);
                let app = Arc::clone(&app);
                let trng = rng.derive(gid as u64);
                let coop_id = coop.spawn(move |y: &Yielder<BlockReason>| {
                    let mut ctx =
                        ThreadCtx::new(y, cell, costs, gid, node, local, nodes, tpn, trng);
                    app(&mut ctx);
                    ctx.flush_burst();
                });
                threads.push(ThreadInfo {
                    node,
                    coop: coop_id,
                    finished: false,
                });
            }
        }
        let cfg2_trace = cfg.trace_capacity;
        let cfg2_spans = cfg.spans;
        let oracle = if cfg.verify {
            Oracle::recording(cfg.verify_sink.clone())
        } else {
            Oracle::disabled()
        };
        let explore = cfg.explore.map(ExploreSchedule::new);
        let script = cfg.script.clone().map(ScriptCursor::new);
        let steps = cfg.record_steps.then(|| StepLog::new(STEP_LOG_CAP));
        if cfg.record_steps {
            for cell in &cells {
                cell.lock().track_steps = true;
            }
        }
        let mut net = NetworkSim::new(nodes, cfg.latency.clone());
        if !cfg.jitter_max.is_zero() {
            net.set_jitter(rng.derive(0x7177), cfg.jitter_max);
        }
        if let Some(loss) = cfg.loss {
            net.enable_loss(rng.derive(0xDEAD), loss);
        }
        if let Some(plan) = cfg.faults.as_ref().filter(|p| !p.is_empty()) {
            // A fault plan needs the reliability layer underneath; give it
            // the default adaptive configuration if none was requested.
            // The derives happen only for a non-empty plan, so `None` and
            // `Some(empty)` produce byte-identical reports — no acks, no
            // loss counters, untouched seed streams.
            if cfg.loss.is_none() {
                net.enable_loss(rng.derive(0xDEAD), cvm_net::LossConfig::clean_adaptive());
            }
            net.set_faults(rng.derive(0xFA17), plan.clone());
        }
        let barrier_expected = if cfg.aggregate_barriers {
            nodes
        } else {
            nodes * tpn
        };
        let proto = make_protocol(cfg.protocol);
        // Exact replay (scripts), seeded perturbation, step recording,
        // fault injection and the verifying oracle all observe or pin the
        // precise sequential interleaving; the planner stands down for
        // them even though its output would be identical.
        let par_enabled = cfg.shards > 1
            && cfg.script.is_none()
            && cfg.explore.is_none()
            && !cfg.record_steps
            && !cfg.verify
            && cfg.inject.is_none();
        let shard_map = ShardMap::new(nodes, cfg.shards);
        let lookahead = cfg.latency.lookahead();
        let core = DriverCore {
            cfg,
            cells,
            ctl,
            threads,
            coop,
            net,
            mainq: ShardedEventQueue::new(shard_map, tpn),
            lookahead,
            planned: vec![None; shard_map.shards()],
            planned_n: 0,
            floors: vec![VirtualTime::MAX; nodes],
            par_enabled,
            planned_bursts: 0,
            burst_total_ns: 0,
            overlap_saved_ns: 0,
            win_sum_ns: 0,
            win_max_ns: 0,
            twin_live_seen: vec![0; nodes],
            twin_live_sum: 0,
            twin_global_peak: 0,
            cache_live_sum: 0,
            cache_global_peak: 0,
            lock_mgrs,
            master: BarrierMaster::new(nodes, barrier_expected),
            stats: DsmStats::new(),
            startup_arrived: 0,
            endm_arrived: 0,
            gred_count: 0,
            gred_acc: None,
            gred_op: None,
            snapshot: None,
            finished_total: 0,
            gseq: 0,
            trace: Trace::new(cfg2_trace),
            hist: DsmHistograms::new(),
            attr: ResourceAttr::new(),
            lock_req_at: HashMap::new(),
            lock_hops: HashMap::new(),
            barrier_arrived_at: vec![None; nodes],
            spans: SpanForest::new(cfg2_spans),
            cur_span: 0,
            page_cause: HashMap::new(),
            barrier_span: vec![0; nodes],
            reduce_span: vec![0; nodes],
            lock_span: HashMap::new(),
            oracle,
            explore,
            script,
            steps,
            inject_seen: 0,
        };
        Driver { core, proto }
    }

    fn run(&mut self) -> RunReport {
        let proto = self.proto.as_mut();
        let core = &mut self.core;
        proto.reset(core);
        for tid in 0..core.threads.len() {
            let n = core.threads[tid].node;
            core.ctl[n].sched.ready.push_back(tid);
        }
        for n in 0..core.cfg.nodes {
            core.schedule_resume(n, VirtualTime::ZERO);
        }
        loop {
            let limit = core.mainq.peek_time().unwrap_or(VirtualTime::MAX);
            if let Some((t, msg)) = core.net.poll(limit) {
                if core.spans.enabled() {
                    if let Some(info) = core.net.last_delivery() {
                        core.spans
                            .record_hop(msg.span, msg.src.0, msg.dst.0, msg.kind, info);
                    }
                }
                // Handlers run inside the delivered message's causal
                // span: their own sends inherit it via send_remote.
                let dst = msg.dst.0;
                core.cur_span = msg.span;
                core.handle_payload(&mut *proto, dst, msg.src.0, msg.payload, t);
                core.cur_span = 0;
                core.sample_twin_live(dst);
                continue;
            }
            // Every network event at or before the queue head is now
            // delivered, so the delivery floors the planner consults are
            // final for the upcoming window.
            if core.par_enabled && core.planned_n == 0 {
                core.plan_window();
            }
            match core.mainq.pop() {
                Some((t, MainEvent::NodeResume(n))) => core.run_node(&mut *proto, n, t),
                Some((t, MainEvent::ThreadWake(n, tid))) => {
                    core.ctl[n].sched.sleeping -= 1;
                    core.make_ready(n, tid, t);
                }
                None => break,
            }
        }
        let unfinished = core.threads.len() - core.finished_total;
        let failures = core.net.delivery_failures();
        // Unfinished threads with no abandoned traffic is a protocol bug
        // (a genuine deadlock) and still panics. Unfinished threads whose
        // traffic was abandoned at retry exhaustion is the structured
        // peer-unresponsive outcome: report it as degradation.
        assert!(
            unfinished == 0 || !failures.is_empty(),
            "deadlock: {} of {} threads never finished (blocked on \
             unsatisfied synchronization)",
            unfinished,
            core.threads.len()
        );
        let mut report = core.build_report();
        // The timing and bandwidth stats honor the measurement window (an
        // `end_measured` snapshot excludes teardown traffic), but the
        // reliability ledger is an accounting of the whole run: a snapshot
        // taken with messages legitimately still in flight would read as
        // unbalanced, so the final report always carries the final counters.
        report.loss = core.net.loss_stats();
        report.unfinished_threads = unfinished;
        report.failures = failures;
        // The step log and state fingerprint cover the *whole* run (an
        // end-measure snapshot would miss post-measurement picks, and the
        // model checker's equivalence is over terminal states).
        if core.cfg.record_steps {
            report.steps = core.steps.clone();
            report.state_hash = core.state_fingerprint();
        }
        report
    }
}

impl DriverCore {
    /// Re-samples node `n`'s live twin bytes into the cluster-wide sum
    /// and advances the whole-run peak. Called at the two sequential
    /// points where a cell's twins can just have changed — the end of
    /// `run_node` and the end of a message handler — so the peak is a
    /// property of the simulated execution, identical at any shard count.
    pub(super) fn sample_twin_live(&mut self, n: usize) {
        let live = self.cells[n].lock().twin_bytes_live;
        let old = std::mem::replace(&mut self.twin_live_seen[n], live);
        self.twin_live_sum = self.twin_live_sum + live - old;
        self.twin_global_peak = self.twin_global_peak.max(self.twin_live_sum);
    }

    /// True when the configured injection's fault site is at its targeted
    /// occurrence; advances the occurrence counter either way.
    pub(super) fn inject_hits(&mut self, want: fn(&InjectFault) -> Option<u64>) -> bool {
        let Some(fault) = &self.cfg.inject else {
            return false;
        };
        let Some(nth) = want(fault) else {
            return false;
        };
        let seen = self.inject_seen;
        self.inject_seen += 1;
        seen == nth
    }

    /// FNV-1a fingerprint of the terminal protocol-visible state: every
    /// node's memory image, page protection states and vector time. Two
    /// runs with the same fingerprint are indistinguishable to the
    /// application; the model checker uses it for byte-identical replay
    /// assertions and duplicate-terminal-state counting.
    fn state_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        for (n, cell) in self.cells.iter().enumerate() {
            let c = cell.lock();
            h.write_u64(n as u64);
            h.write(&c.mem);
            for s in &c.state {
                h.write_u64(match s {
                    PageState::Unmapped => 0,
                    PageState::Invalid => 1,
                    PageState::ReadOnly => 2,
                    PageState::ReadWrite => 3,
                });
            }
            for q in 0..self.cfg.nodes {
                h.write_u64(u64::from(self.ctl[n].vt.get(q)));
            }
        }
        h.finish()
    }
}
