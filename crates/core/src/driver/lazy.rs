//! The paper's protocol: lazy release consistency with multiple writers,
//! invalidate-based.
//!
//! Modifications travel as write notices at synchronization; data moves
//! only when a faulting reader pulls a base copy and per-writer diffs.
//! Everything this protocol does is the shared mechanism, so the impl is
//! the identity over the pull paths — the baseline other protocols are
//! measured against.

use cvm_sim::VirtualTime;

use crate::msg::Payload;
use crate::page::PageId;

use super::{Coherence, DriverCore};

/// Lazy multiple-writer LRC (the CVM default).
#[derive(Debug, Default)]
pub(super) struct LazyMultiWriter;

impl Coherence for LazyMultiWriter {
    fn reset(&mut self, _core: &mut DriverCore) {}

    fn on_interval_close(&mut self, _core: &mut DriverCore, _n: usize, _pages: &[usize]) {
        // Lazy: notices travel at synchronization; data stays put.
    }

    fn on_fault(&mut self, core: &mut DriverCore, n: usize, tid: usize, page: PageId, write: bool) {
        core.pull_fault(n, tid, page, write);
    }

    fn on_message(
        &mut self,
        core: &mut DriverCore,
        n: usize,
        src: usize,
        payload: Payload,
        t: VirtualTime,
    ) {
        let _ = core.pull_message(n, src, payload, t);
    }
}
