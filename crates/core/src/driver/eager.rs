//! Munin-style eager update protocol.
//!
//! At every interval close the writer *pushes* its new diffs to every
//! node holding a copy. Readers rarely fault, but bandwidth scales with
//! the copyset — the comparison that motivated CVM's protocol work. An
//! adaptive copyset-pruning rule (drop a member after
//! [`PRUNE_AFTER_UNUSED`](crate::protocol::PRUNE_AFTER_UNUSED)
//! consecutive unused updates, as in Munin) keeps the protocol from
//! degenerating to broadcast.
//!
//! Faults still use the shared pull mechanism: a pruned or invalidated
//! node fetches lazily and thereby re-registers in the copyset.
//!
//! Pushes race with each other and with in-flight fetches, so a receiver
//! cannot blindly apply what arrives: a diff is applied only when the
//! copy already reflects everything the diff causally depends on (the
//! writer's previous diff of the page, and — carried in the push as
//! `base` — the version of the exact words the diff overwrites). A push
//! that arrives too early is *parked*, not dropped, and retried each
//! time the page's watermark advances; a push that arrives too late
//! (its sequence is already covered) is discarded. Without the `base`
//! guard, a delayed push chain let a node apply a newer diff first and
//! the recovery fetch then patched the missing *older* diff over it,
//! resurrecting overwritten words — the signature failure was a
//! lock-protected accumulator losing half its increments under
//! fault-injected reordering.

use std::collections::{BTreeMap, HashMap};

use cvm_sim::VirtualTime;

use crate::diff::Diff;
use crate::msg::Payload;
use crate::page::{PageId, PageState};
use crate::protocol::CopysetEntry;
use crate::trace::TraceEvent;

use super::{Coherence, DriverCore};

/// A push that arrived before its causal predecessors; retried when the
/// page's applied watermark advances.
struct ParkedPush {
    src: usize,
    tag: u32,
    diff: Diff,
    prev: u32,
    upto: u32,
    base: u64,
}

/// Eager update with adaptive copyset pruning.
///
/// The copysets are protocol-private state, driver-global as a stand-in
/// for the home-directory state a real system distributes.
#[derive(Default)]
pub(super) struct EagerUpdate {
    copysets: Vec<CopysetEntry>,
    /// Early pushes per `(node, page)`, ordered by close sequence.
    parked: HashMap<(usize, usize), BTreeMap<u64, ParkedPush>>,
}

impl std::fmt::Debug for EagerUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EagerUpdate")
            .field("copysets", &self.copysets.len())
            .field("parked", &self.parked.len())
            .finish()
    }
}

/// Why a push could not be applied right now.
enum Refusal {
    /// Missing causal predecessors; worth retrying once they land.
    Early,
    /// Already covered or no copy to update; discard.
    Stale,
}

impl EagerUpdate {
    /// Applies one push if every guard passes. On refusal, says whether
    /// the push may still apply later (park it) or never will (drop it).
    #[allow(clippy::too_many_arguments)]
    fn try_apply(
        core: &mut DriverCore,
        n: usize,
        src: usize,
        page: PageId,
        tag: u32,
        gseq: u64,
        d: &Diff,
        prev: u32,
        upto: u32,
        base: u64,
        t: VirtualTime,
    ) -> Result<(), Refusal> {
        let p = page.0;
        if core.ctl[n].fetches.contains_key(&p) {
            // A lazy fetch is in flight; let it win rather than risk
            // applying out of order — then retry when it completes (the
            // reply may or may not already include this diff).
            return Err(Refusal::Early);
        }
        if !core.cells[n].lock().state[p].has_copy() {
            return Err(Refusal::Stale);
        }
        if gseq <= core.ctl[n].applied_gseq.get(&p).copied().unwrap_or(0) {
            // A causally *later* diff is already in: applying this one
            // would resurrect overwritten words. The fetch that got ahead
            // of us already carried this data.
            return Err(Refusal::Stale);
        }
        if core.ctl[n].applied_dtag(p, src) < prev {
            // Gap in the writer's own diff stream (an earlier push is
            // still in flight). Applying this one would let `upto` retire
            // notices whose data we never received.
            return Err(Refusal::Early);
        }
        if core.ctl[n].word_base(p, d) < base {
            // The diff read-modify-wrote words whose versions we have not
            // applied. Accepting it would move our watermark past the
            // hole, and the recovery fetch would then patch the *older*
            // missing diff over this newer one — resurrecting overwritten
            // words (the classic lost-update under reordering). Compared
            // on the diff's own words, not the page watermark, so
            // word-disjoint concurrent diffs never block each other.
            return Err(Refusal::Early);
        }
        {
            let mut cell = core.cells[n].lock();
            d.apply(cell.page_bytes_mut(p));
            // Keep a concurrent twin in step so our own next diff covers
            // only our own writes; otherwise the pushed words would be
            // re-diffed under our tag and overwrite the writer's later
            // updates on other copies.
            if let Some(twin) = cell.twin_mut(p) {
                d.apply(twin);
            }
        }
        core.stats.diffs_used += 1;
        let kd = (p, src);
        let e = core.ctl[n].applied_dtag.entry(kd).or_insert(0);
        *e = (*e).max(tag);
        core.ctl[n].applied_gseq.insert(p, gseq);
        core.ctl[n].note_words(p, d, gseq);
        let e = core.ctl[n].applied_ivl.entry(kd).or_insert(0);
        *e = (*e).max(upto);
        if core.cfg.verify {
            core.trace.record(
                t,
                TraceEvent::DiffApplied {
                    node: n,
                    page,
                    writer: src,
                    upto,
                },
            );
        }
        // Retire satisfied notices and revalidate if nothing is pending
        // any more.
        let remaining = core.retire_pending(n, p);
        if !remaining {
            let mut cell = core.cells[n].lock();
            if cell.state[p] == PageState::Invalid {
                cell.state[p] = PageState::ReadOnly;
            }
        }
        Ok(())
    }

    /// Retries parked pushes for `(n, p)` in close-sequence order after
    /// the page's watermark moved (a push applied or a fetch completed).
    /// Sequences the watermark has passed are discarded — their data
    /// arrived through the fetch.
    fn drain_parked(&mut self, core: &mut DriverCore, n: usize, p: usize, t: VirtualTime) {
        let Some(held) = self.parked.get_mut(&(n, p)) else {
            return;
        };
        loop {
            let applied = core.ctl[n].applied_gseq.get(&p).copied().unwrap_or(0);
            while let Some((&g, _)) = held.first_key_value() {
                if g > applied {
                    break;
                }
                held.remove(&g);
            }
            let Some((&gseq, _)) = held.first_key_value() else {
                break;
            };
            let park = held.get(&gseq).expect("just peeked");
            let ok = Self::try_apply(
                core,
                n,
                park.src,
                PageId(p),
                park.tag,
                gseq,
                &park.diff,
                park.prev,
                park.upto,
                park.base,
                t,
            );
            match ok {
                Ok(()) => {
                    held.remove(&gseq);
                }
                Err(Refusal::Stale) => {
                    held.remove(&gseq);
                }
                Err(Refusal::Early) => break,
            }
        }
        if held.is_empty() {
            self.parked.remove(&(n, p));
        }
    }
}

impl Coherence for EagerUpdate {
    fn reset(&mut self, core: &mut DriverCore) {
        self.copysets = (0..core.cfg.pages())
            .map(|_| CopysetEntry::full(core.cfg.nodes))
            .collect();
        self.parked.clear();
    }

    /// At interval close, extract and push the new diff of every dirtied
    /// page to the page's copyset, pruning members that never touch the
    /// page between pushes (Munin's update timeout).
    fn on_interval_close(&mut self, core: &mut DriverCore, n: usize, pages: &[usize]) {
        let now = core.ctl[n].sched.clock;
        for &p in pages {
            let Some(entry) = core.ensure_extracted(n, p) else {
                continue;
            };
            // Tag of the diff before the one just extracted: the
            // receiver-side continuity check (never pruned, so the
            // second-to-last cache entry is authoritative).
            let prev = core.ctl[n]
                .diff_cache
                .get(&p)
                .and_then(|v| v.len().checked_sub(2).map(|i| v[i].0))
                .unwrap_or(0);
            let upto = core.ctl[n].log.latest();
            // Everything this diff causally depends on: the highest
            // version among the exact words it writes (a lock-protected
            // read-modify-write chains through here). Computed before the
            // diff's own words are recorded at its own close sequence.
            let base = core.ctl[n].word_base(p, &entry.2);
            core.ctl[n].note_words(p, &entry.2, entry.1);
            for target in self.copysets[p].push_targets(n) {
                if self.copysets[p].record_push(target) {
                    // Too many unused updates: drop the member. The
                    // notification stands in for the directory update a
                    // distributed implementation would send.
                    self.copysets[p].remove(target);
                    core.stats.copies_dropped += 1;
                    core.send_remote(
                        n,
                        target,
                        Payload::DropCopy {
                            page: PageId(p),
                            node: target,
                        },
                        now,
                    );
                } else {
                    core.stats.updates_pushed += 1;
                    core.trace.record(
                        now,
                        TraceEvent::UpdatePushed {
                            node: n,
                            page: PageId(p),
                            target,
                        },
                    );
                    core.send_remote(
                        n,
                        target,
                        Payload::UpdatePush {
                            page: PageId(p),
                            diff: entry.clone(),
                            prev,
                            upto,
                            base,
                        },
                        now,
                    );
                }
            }
        }
    }

    fn on_fault(&mut self, core: &mut DriverCore, n: usize, tid: usize, page: PageId, write: bool) {
        core.pull_fault(n, tid, page, write);
    }

    fn on_message(
        &mut self,
        core: &mut DriverCore,
        n: usize,
        src: usize,
        payload: Payload,
        t: VirtualTime,
    ) {
        match payload {
            Payload::UpdatePush {
                page,
                diff,
                prev,
                upto,
                base,
            } => {
                let p = page.0;
                let (tag, gseq, d) = diff;
                match Self::try_apply(core, n, src, page, tag, gseq, &d, prev, upto, base, t) {
                    Ok(()) => self.drain_parked(core, n, p, t),
                    Err(Refusal::Early) => {
                        self.parked.entry((n, p)).or_default().insert(
                            gseq,
                            ParkedPush {
                                src,
                                tag,
                                diff: d,
                                prev,
                                upto,
                                base,
                            },
                        );
                    }
                    Err(Refusal::Stale) => {}
                }
            }
            Payload::DropCopy { .. } => {
                // Informational: the writer stopped pushing to us. Our
                // copy stays valid until a write notice invalidates it;
                // the next fault re-registers us in the copyset.
            }
            other => {
                if let Some(p) = core.pull_message(n, src, other, t) {
                    // The faulting node demonstrably uses the page:
                    // (re)join the copyset.
                    self.copysets[p].add(n);
                    self.copysets[p].record_use(n);
                    // The fetch moved the watermark; early pushes that
                    // were waiting on it may now apply.
                    self.drain_parked(core, n, p, t);
                }
            }
        }
    }
}
