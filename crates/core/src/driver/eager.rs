//! Munin-style eager update protocol.
//!
//! At every interval close the writer *pushes* its new diffs to every
//! node holding a copy. Readers rarely fault, but bandwidth scales with
//! the copyset — the comparison that motivated CVM's protocol work. An
//! adaptive copyset-pruning rule (drop a member after
//! [`PRUNE_AFTER_UNUSED`](crate::protocol::PRUNE_AFTER_UNUSED)
//! consecutive unused updates, as in Munin) keeps the protocol from
//! degenerating to broadcast.
//!
//! Faults still use the shared pull mechanism: a pruned or invalidated
//! node fetches lazily and thereby re-registers in the copyset.

use cvm_sim::VirtualTime;

use crate::msg::Payload;
use crate::page::{PageId, PageState};
use crate::protocol::CopysetEntry;
use crate::trace::TraceEvent;

use super::{Coherence, DriverCore};

/// Eager update with adaptive copyset pruning.
///
/// The copysets are protocol-private state, driver-global as a stand-in
/// for the home-directory state a real system distributes.
#[derive(Debug, Default)]
pub(super) struct EagerUpdate {
    copysets: Vec<CopysetEntry>,
}

impl Coherence for EagerUpdate {
    fn reset(&mut self, core: &mut DriverCore) {
        self.copysets = (0..core.cfg.pages())
            .map(|_| CopysetEntry::full(core.cfg.nodes))
            .collect();
    }

    /// At interval close, extract and push the new diff of every dirtied
    /// page to the page's copyset, pruning members that never touch the
    /// page between pushes (Munin's update timeout).
    fn on_interval_close(&mut self, core: &mut DriverCore, n: usize, pages: &[usize]) {
        let now = core.ctl[n].sched.clock;
        for &p in pages {
            let Some(entry) = core.ensure_extracted(n, p) else {
                continue;
            };
            // Tag of the diff before the one just extracted: the
            // receiver-side continuity check (never pruned, so the
            // second-to-last cache entry is authoritative).
            let prev = core.ctl[n]
                .diff_cache
                .get(&p)
                .and_then(|v| v.len().checked_sub(2).map(|i| v[i].0))
                .unwrap_or(0);
            let upto = core.ctl[n].log.latest();
            for target in self.copysets[p].push_targets(n) {
                if self.copysets[p].record_push(target) {
                    // Too many unused updates: drop the member. The
                    // notification stands in for the directory update a
                    // distributed implementation would send.
                    self.copysets[p].remove(target);
                    core.stats.copies_dropped += 1;
                    core.send_remote(
                        n,
                        target,
                        Payload::DropCopy {
                            page: PageId(p),
                            node: target,
                        },
                        now,
                    );
                } else {
                    core.stats.updates_pushed += 1;
                    core.trace.record(
                        now,
                        TraceEvent::UpdatePushed {
                            node: n,
                            page: PageId(p),
                            target,
                        },
                    );
                    core.send_remote(
                        n,
                        target,
                        Payload::UpdatePush {
                            page: PageId(p),
                            diff: entry.clone(),
                            prev,
                            upto,
                        },
                        now,
                    );
                }
            }
        }
    }

    fn on_fault(&mut self, core: &mut DriverCore, n: usize, tid: usize, page: PageId, write: bool) {
        core.pull_fault(n, tid, page, write);
    }

    fn on_message(
        &mut self,
        core: &mut DriverCore,
        n: usize,
        src: usize,
        payload: Payload,
        t: VirtualTime,
    ) {
        match payload {
            Payload::UpdatePush {
                page,
                diff,
                prev,
                upto,
            } => {
                let p = page.0;
                if core.ctl[n].fetches.contains_key(&p) {
                    // A lazy fetch is in flight; let it win (its reply
                    // includes this diff from the writer's cache) rather
                    // than risk applying out of order.
                    return;
                }
                let has_copy = core.cells[n].lock().state[p].has_copy();
                if !has_copy {
                    return;
                }
                let (tag, gseq, d) = diff;
                if gseq <= core.ctl[n].applied_gseq.get(&p).copied().unwrap_or(0) {
                    // A causally *later* diff is already in: applying this
                    // one would resurrect overwritten words. Refuse it and
                    // leave the watermarks alone — the write notice will
                    // invalidate us and the refault pulls diffs in order.
                    return;
                }
                if core.ctl[n].applied_dtag(p, src) < prev {
                    // Gap in the writer's diff stream (an earlier push was
                    // refused or is still in flight). Applying this one
                    // would let `upto` retire notices whose data we never
                    // received; refuse and recover through the refault.
                    return;
                }
                {
                    let mut cell = core.cells[n].lock();
                    d.apply(cell.page_bytes_mut(p));
                    // Keep a concurrent twin in step so our own next diff
                    // covers only our own writes; otherwise the pushed
                    // words would be re-diffed under our tag and overwrite
                    // the writer's later updates on other copies.
                    if let Some(twin) = cell.twin_mut(p) {
                        d.apply(twin);
                    }
                }
                core.stats.diffs_used += 1;
                let kd = (p, src);
                let e = core.ctl[n].applied_dtag.entry(kd).or_insert(0);
                *e = (*e).max(tag);
                core.ctl[n].applied_gseq.insert(p, gseq);
                let e = core.ctl[n].applied_ivl.entry(kd).or_insert(0);
                *e = (*e).max(upto);
                if core.cfg.verify {
                    core.trace.record(
                        t,
                        TraceEvent::DiffApplied {
                            node: n,
                            page,
                            writer: src,
                            upto,
                        },
                    );
                }
                // Retire satisfied notices and revalidate if nothing is
                // pending any more.
                let remaining = core.retire_pending(n, p);
                if !remaining {
                    let mut cell = core.cells[n].lock();
                    if cell.state[p] == PageState::Invalid {
                        cell.state[p] = PageState::ReadOnly;
                    }
                }
            }
            Payload::DropCopy { .. } => {
                // Informational: the writer stopped pushing to us. Our
                // copy stays valid until a write notice invalidates it;
                // the next fault re-registers us in the copyset.
            }
            other => {
                if let Some(p) = core.pull_message(n, src, other, t) {
                    // The faulting node demonstrably uses the page:
                    // (re)join the copyset.
                    self.copysets[p].add(n);
                    self.copysets[p].record_use(n);
                }
            }
        }
    }
}
