//! Coherence engine: the [`Coherence`] trait each protocol implements,
//! plus the mechanism every protocol shares — twins, diffs, interval
//! closes, write-notice application, and the fetch assembly used by the
//! pull-based protocols.
//!
//! The split mirrors CVM's class hierarchy: protocols "derive from the
//! base `Page`/`Protocol` classes and override only what differs". Here
//! the base class is `DriverCore`'s `pub(super)` mechanism methods; the
//! overrides are the trait hooks. See `lazy.rs`, `eager.rs` and `home.rs`
//! for the three implementations, and `DESIGN.md` for a guide to writing
//! a new one.

use cvm_sim::{SimDuration, VirtualTime};

use crate::diff::Diff;
use crate::interval::{VectorTime, WriteNotice};
use crate::msg::Payload;
use crate::oracle::{InjectFault, Invariant};
use crate::page::{PageId, PageState};
use crate::span::{SpanKind, SpanResource};
use crate::trace::TraceEvent;

use super::DriverCore;

/// A coherence protocol: the policy half of the DSM, driven by the
/// mechanism in [`DriverCore`].
///
/// Exactly one impl is active per run, selected once from the configured
/// [`ProtocolKind`](crate::ProtocolKind); no other layer branches on the
/// kind. Hooks receive `&mut DriverCore` so the protocol can use the
/// shared mechanism (fetch assembly, diff extraction, statistics,
/// `send_remote`) and keep its own state in `self`.
pub trait Coherence {
    /// Called once before the run starts and again at every measurement
    /// reset (`startup_done`): (re)initialize protocol-private state.
    fn reset(&mut self, core: &mut DriverCore);

    /// Called after node `n` closed an interval that dirtied `pages`
    /// (write notices are already logged). Push-style protocols ship data
    /// here; pull-style protocols do nothing.
    fn on_interval_close(&mut self, core: &mut DriverCore, n: usize, pages: &[usize]);

    /// Thread `tid` on node `n` faulted on `page`. The protocol decides
    /// what remote data (if any) satisfies the fault and parks the thread
    /// until it arrives.
    fn on_fault(&mut self, core: &mut DriverCore, n: usize, tid: usize, page: PageId, write: bool);

    /// A data-plane payload arrived at node `n` from `src`. Sync-service
    /// payloads (locks, barriers, reductions) are routed by the transport
    /// layer and never reach here.
    fn on_message(
        &mut self,
        core: &mut DriverCore,
        n: usize,
        src: usize,
        payload: Payload,
        t: VirtualTime,
    );
}

/// A page fetch in progress on one node.
#[derive(Debug, Default)]
pub(super) struct PendingFetch {
    pub(super) waiters: Vec<(usize, bool)>,
    pub(super) replies_needed: usize,
    pub(super) base: Option<Vec<u8>>,
    pub(super) diffs: Vec<(u32, u64, usize, Diff)>,
    /// When the fault left the node (histogram sample start).
    pub(super) started: VirtualTime,
    /// The RemoteFault span covering this fetch (0 when spans are off).
    pub(super) span: u64,
}

impl DriverCore {
    /// Shared fault path for the pull-based protocols: figure out what
    /// remote data the fault needs (a base copy, diffs per pending
    /// writer), open a [`PendingFetch`] and send the requests.
    pub(super) fn pull_fault(&mut self, n: usize, tid: usize, page: PageId, write: bool) {
        let p = page.0;
        if let Some(fetch) = self.ctl[n].fetches.get_mut(&p) {
            // An identical request is already outstanding: the paper's
            // "Block Same Page".
            fetch.waiters.push((tid, write));
            self.stats.block_same_page += 1;
            return;
        }
        // Fault overhead: user-level signal + protection change.
        let overhead = self.cfg.signal + self.cfg.mprotect;
        self.ctl[n].sched.clock += overhead;
        self.ctl[n].breakdown.user += overhead;
        let now = self.ctl[n].sched.clock;
        // What do we need? A base copy if we never had one, plus diffs for
        // every pending write notice, grouped by writer.
        let state = self.cells[n].lock().state[p];
        let mut writers: Vec<(usize, u32)> = Vec::new(); // (writer, since)
        if let Some(pend) = self.ctl[n].pending.get(&p) {
            let mut ws: Vec<usize> = pend.iter().map(|&(w, _)| w).collect();
            ws.sort_unstable();
            ws.dedup();
            for w in ws {
                writers.push((w, self.ctl[n].applied_dtag(p, w)));
            }
        }
        let home = p % self.cfg.nodes;
        let need_base = state == PageState::Unmapped && home != n;
        if !need_base && writers.is_empty() {
            // Nothing remote is required (e.g. pre-startup touch of a page
            // homed here): validate and continue.
            let mut cell = self.cells[n].lock();
            if matches!(cell.state[p], PageState::Unmapped | PageState::Invalid) {
                cell.state[p] = PageState::ReadOnly;
            }
            drop(cell);
            self.ctl[n].sched.ready.push_back(tid);
            return;
        }
        self.note_request_initiated(n);
        self.stats.remote_faults += 1;
        self.ctl[n].out_faults += 1;
        self.attr.page_mut(p).faults += 1;
        self.trace.record(
            now,
            TraceEvent::Fault {
                node: n,
                page,
                write,
            },
        );
        // The fault span's parent is whatever invalidated the page (the
        // lock grant or barrier release that delivered the notice), so
        // `cvm explain` can walk from a slow fault back to its cause.
        let parent = self.page_cause.get(&p).copied().unwrap_or(0);
        let span = self
            .spans
            .open(SpanKind::RemoteFault, n, SpanResource::Page(p), parent, now);
        let mut fetch = PendingFetch {
            waiters: vec![(tid, write)],
            started: now,
            span,
            ..Default::default()
        };
        if need_base {
            fetch.replies_needed += 1;
        }
        fetch.replies_needed += writers.len();
        self.ctl[n].fetches.insert(p, fetch);
        if need_base {
            self.cur_span =
                self.spans
                    .open(SpanKind::PagePull, n, SpanResource::Page(p), span, now);
            self.send_remote(n, home, Payload::PageRequest { page }, now);
        }
        for (w, since) in writers {
            self.cur_span =
                self.spans
                    .open(SpanKind::DiffPull, n, SpanResource::Page(p), span, now);
            self.send_remote(n, w, Payload::DiffRequest { page, since }, now);
        }
        self.cur_span = 0;
    }

    /// Shared message path for the pull-based protocols: page/diff
    /// requests and replies. Returns the page whose fetch completed with
    /// this message, if any, so the caller can apply protocol-specific
    /// bookkeeping (the eager protocol re-registers the node in the
    /// copyset).
    ///
    /// # Panics
    ///
    /// Panics on payloads that are not part of the pull mechanism; the
    /// caller matches its own payloads first.
    pub(super) fn pull_message(
        &mut self,
        n: usize,
        src: usize,
        payload: Payload,
        t: VirtualTime,
    ) -> Option<usize> {
        match payload {
            Payload::PageRequest { page } => {
                let data = self.cells[n].lock().page_bytes(page.0).to_vec();
                self.send_remote(n, src, Payload::PageReply { page, data }, t);
                None
            }
            Payload::PageReply { page, data } => {
                // The reply closes the PagePull child it rode in on.
                self.spans.close(self.cur_span, t);
                let p = page.0;
                if let Some(f) = self.ctl[n].fetches.get_mut(&p) {
                    f.base = Some(data);
                    f.replies_needed -= 1;
                    if f.replies_needed == 0 {
                        self.complete_fetch(n, p, t);
                        return Some(p);
                    }
                }
                None
            }
            Payload::DiffRequest { page, since } => {
                let _ = self.ensure_extracted(n, page.0);
                let upto = self.ctl[n].log.latest();
                let diffs: Vec<(u32, u64, Diff)> = self.ctl[n]
                    .diff_cache
                    .get(&page.0)
                    .map(|v| {
                        v.iter()
                            .filter(|&&(tag, _, _)| tag > since)
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default();
                self.send_remote(n, src, Payload::DiffReply { page, diffs, upto }, t);
                None
            }
            Payload::DiffReply { page, diffs, upto } => {
                // The reply closes the DiffPull child it rode in on.
                self.spans.close(self.cur_span, t);
                let p = page.0;
                let key = (p, src);
                let e = self.ctl[n].applied_ivl.entry(key).or_insert(0);
                *e = (*e).max(upto);
                if self.cfg.verify {
                    // The applied watermark can run ahead of our vector
                    // time; the race detector mirrors it from this event.
                    self.trace.record(
                        t,
                        TraceEvent::DiffApplied {
                            node: n,
                            page,
                            writer: src,
                            upto,
                        },
                    );
                }
                if let Some(f) = self.ctl[n].fetches.get_mut(&p) {
                    for (tag, gseq, d) in diffs {
                        f.diffs.push((tag, gseq, src, d));
                    }
                    f.replies_needed -= 1;
                    if f.replies_needed == 0 {
                        self.complete_fetch(n, p, t);
                        return Some(p);
                    }
                }
                None
            }
            other => unreachable!("pull protocols never receive {:?}", other.kind()),
        }
    }

    /// All replies are in: apply base + diffs in happens-before order,
    /// retire satisfied notices, charge the local apply cost and wake the
    /// fault's waiters.
    pub(super) fn complete_fetch(&mut self, n: usize, page: usize, t: VirtualTime) {
        let mut fetch = self.ctl[n].fetches.remove(&page).expect("fetch exists");
        let mut words = 0usize;
        // Apply in happens-before order: close-sequence, then writer,
        // then the writer-local tag.
        fetch.diffs.sort_by_key(|&(tag, gseq, w, _)| (gseq, w, tag));
        if fetch.diffs.len() >= 2
            && self.inject_hits(|f| match f {
                InjectFault::ReorderDiffApply { nth } => Some(*nth),
                _ => None,
            })
        {
            fetch.diffs.reverse();
        }
        if self.oracle.enabled() {
            let ordered = fetch
                .diffs
                .windows(2)
                .all(|w| (w[0].1, w[0].2, w[0].0) <= (w[1].1, w[1].2, w[1].0));
            self.oracle
                .check(Invariant::DiffApplyOrder, ordered, Some(n), t, || {
                    format!("diffs for p{page} applied out of happens-before order")
                });
        }
        let eager = self.cfg.protocol == crate::protocol::ProtocolKind::EagerUpdate;
        {
            let mut cell = self.cells[n].lock();
            if let Some(base) = fetch.base.take() {
                cell.page_bytes_mut(page).copy_from_slice(&base);
                if eager {
                    // The whole page was replaced by a copy of unknown
                    // word provenance; stale per-word versions would
                    // overstate what we hold.
                    self.ctl[n].word_ver.remove(&page);
                }
            }
            for (tag, gseq, w, d) in &fetch.diffs {
                d.apply(cell.page_bytes_mut(page));
                words += d.words_applied();
                let key = (page, *w);
                let e = self.ctl[n].applied_dtag.entry(key).or_insert(0);
                *e = (*e).max(*tag);
                let e = self.ctl[n].applied_gseq.entry(page).or_insert(0);
                *e = (*e).max(*gseq);
                if eager {
                    self.ctl[n].note_words(page, d, *gseq);
                }
            }
        }
        self.stats.diffs_used += fetch.diffs.len() as u64;
        self.trace.record(
            t,
            TraceEvent::FetchComplete {
                node: n,
                page: PageId(page),
                diffs: fetch.diffs.len(),
            },
        );
        // Retire satisfied notices.
        let remaining = self.retire_pending(n, page);
        {
            let mut cell = self.cells[n].lock();
            cell.state[page] = if remaining {
                PageState::Invalid
            } else {
                PageState::ReadOnly
            };
        }
        // Local consistency cost: protection change + diff application,
        // charged to the faulting node.
        let cost = self.cfg.mprotect
            + SimDuration::from_ns(words as u64 * self.cfg.diff_word_apply.as_ns());
        self.ctl[n].sched.clock = self.ctl[n].sched.clock.max(t) + cost;
        self.ctl[n].breakdown.user += cost;
        self.ctl[n].out_faults -= 1;
        // Histogram sample: fault signal to page usable again, including
        // the local apply cost just charged.
        self.hist
            .fault_fetch_ns
            .record(self.ctl[n].sched.clock.since(fetch.started).as_ns());
        let clock = self.ctl[n].sched.clock;
        self.spans.close(fetch.span, clock);
        if let Some(rec) = self.spans.get(fetch.span) {
            self.attr.page_mut(page).fault_span_ns += rec.duration_ns();
        }
        for (tid, _write) in fetch.waiters {
            self.make_ready(n, tid, clock);
        }
    }

    /// Opens a single-reply [`PendingFetch`] for `page` with `tid` as the
    /// first waiter (the shape every single-round-trip protocol uses).
    /// Returns the fetch's RemoteFault span id so the caller can stamp
    /// the outgoing request (0 when spans are off).
    pub(super) fn open_fetch(
        &mut self,
        n: usize,
        page: usize,
        tid: usize,
        write: bool,
        now: VirtualTime,
    ) -> u64 {
        let parent = self.page_cause.get(&page).copied().unwrap_or(0);
        let span = self.spans.open(
            SpanKind::RemoteFault,
            n,
            SpanResource::Page(page),
            parent,
            now,
        );
        self.ctl[n].fetches.insert(
            page,
            PendingFetch {
                waiters: vec![(tid, write)],
                replies_needed: 1,
                started: now,
                span,
                ..Default::default()
            },
        );
        span
    }

    /// Drops pending write notices for `page` that the applied-interval
    /// watermarks now cover; returns `true` if any remain.
    pub(super) fn retire_pending(&mut self, n: usize, page: usize) -> bool {
        let remaining: Vec<(usize, u32)> = self.ctl[n]
            .pending
            .get(&page)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&(w, i)| i > self.ctl[n].applied_ivl(page, w))
                    .collect()
            })
            .unwrap_or_default();
        if remaining.is_empty() {
            self.ctl[n].pending.remove(&page);
            false
        } else {
            self.ctl[n].pending.insert(page, remaining);
            true
        }
    }

    /// Closes the node's current interval if it dirtied any pages.
    pub(super) fn close_interval(&mut self, proto: &mut dyn Coherence, n: usize) {
        let pages = self.cells[n].lock().close_dirty();
        if pages.is_empty() {
            return;
        }
        self.gseq += 1;
        let gseq = self.gseq;
        for &p in &pages {
            self.ctl[n].page_close_gseq.insert(p, gseq);
        }
        let page_ids: Vec<PageId> = pages.iter().copied().map(PageId).collect();
        let own_before = self.ctl[n].vt.get(n);
        let idx = self.ctl[n].log.close(page_ids.clone());
        let at = self.ctl[n].sched.clock;
        self.trace.record(
            at,
            TraceEvent::IntervalClosed {
                node: n,
                interval: idx,
                pages: page_ids.len(),
            },
        );
        if self.oracle.enabled() {
            // A node's own component tracks exactly its closed-interval
            // count, so each close extends it by one — no gaps, no
            // regression.
            self.oracle.check(
                Invariant::VtMonotonic,
                own_before + 1 == idx,
                Some(n),
                at,
                || format!("own vector component {own_before} but closed interval {idx}"),
            );
            self.oracle.check(
                Invariant::IntervalContiguity,
                idx == self.ctl[n].log.latest(),
                Some(n),
                at,
                || format!("interval {idx} closed out of sequence"),
            );
            for &page in &page_ids {
                self.trace.record(
                    at,
                    TraceEvent::NoticeCreated {
                        node: n,
                        writer: n,
                        interval: idx,
                        page,
                    },
                );
            }
        }
        self.ctl[n].vt.advance(n, idx);
        self.ctl[n].notice_store[n].insert(idx, page_ids);
        proto.on_interval_close(self, n, &pages);
    }

    /// Extracts (lazily) the node's pending modifications of `page` into a
    /// cached diff. Returns the newly created entry, if any.
    pub(super) fn ensure_extracted(&mut self, n: usize, page: usize) -> Option<(u32, u64, Diff)> {
        let has_twin = self.cells[n].lock().has_twin(page);
        if !has_twin {
            return None;
        }
        let diff = {
            let cell = self.cells[n].lock();
            let twin = cell.twin(page).expect("twin checked");
            Diff::create(PageId(page), twin, cell.page_bytes(page))
        };
        if diff.is_empty() {
            return None;
        }
        if self.oracle.enabled() {
            // The diff must be exactly the delta between twin and page:
            // patching the twin with it reproduces the current contents.
            let ok = {
                let cell = self.cells[n].lock();
                let twin = cell.twin(page).expect("twin checked");
                let mut patched = twin.to_vec();
                diff.apply(&mut patched);
                patched == cell.page_bytes(page)
            };
            let at = self.ctl[n].sched.clock;
            self.oracle
                .check(Invariant::TwinDiffRoundTrip, ok, Some(n), at, || {
                    format!("diff of p{page} does not reproduce the page from its twin")
                });
        }
        let last_tag = self.ctl[n]
            .diff_cache
            .get(&page)
            .and_then(|v| v.last().map(|&(t, _, _)| t))
            .unwrap_or(0);
        let tag = self.ctl[n].log.latest().max(last_tag + 1).max(1);
        let gseq = match self.ctl[n].page_close_gseq.get(&page) {
            Some(&g) => g,
            None => {
                self.gseq += 1;
                self.gseq
            }
        };
        {
            // Refresh the twin (in place — the buffer is page sized and
            // already ours) so later diffs cover only newer writes.
            self.cells[n].lock().refresh_twin(page);
        }
        let wire = diff.wire_bytes() as u64;
        let ctl = &mut self.ctl[n];
        ctl.cache_bytes += wire;
        ctl.cache_peak = ctl.cache_peak.max(ctl.cache_bytes);
        ctl.diff_cache
            .entry(page)
            .or_default()
            .push((tag, gseq, diff.clone()));
        self.cache_live_sum += wire;
        self.cache_global_peak = self.cache_global_peak.max(self.cache_live_sum);
        self.stats.diffs_created += 1;
        self.hist.diff_bytes.record(diff.modified_bytes() as u64);
        {
            let pa = self.attr.page_mut(page);
            pa.diffs_created += 1;
            pa.diff_bytes += diff.modified_bytes() as u64;
        }
        {
            let at = self.ctl[n].sched.clock;
            self.trace.record(
                at,
                TraceEvent::DiffCreated {
                    node: n,
                    page: PageId(page),
                    bytes: diff.modified_bytes(),
                },
            );
        }
        Some((tag, gseq, diff))
    }

    /// Merges `vt` into node `n`'s vector time, auditing (under `verify`)
    /// that the advance is sound: no component names an interval its
    /// writer never closed, and every interval newly covered has its
    /// write notices present in `n`'s store — the coverage half of LRC's
    /// correctness argument (a dropped notice means `n` silently keeps a
    /// stale copy while claiming to have seen the write).
    pub(super) fn checked_merge(&mut self, n: usize, vt: &VectorTime, at: VirtualTime) {
        if self.oracle.enabled() {
            for q in 0..self.cfg.nodes {
                let claimed = vt.get(q);
                let closed = self.ctl[q].log.latest();
                self.oracle
                    .check(Invariant::VtBounded, claimed <= closed, Some(n), at, || {
                        format!("timestamp names n{q}.{claimed} but only {closed} closed")
                    });
            }
            let before = self.ctl[n].vt.clone();
            self.ctl[n].vt.merge(vt);
            for q in 0..self.cfg.nodes {
                if q == n {
                    continue;
                }
                let to = self.ctl[n].vt.get(q);
                for ivl in before.get(q) + 1..=to {
                    let known = self.ctl[n].notice_store[q].contains_key(&ivl);
                    self.oracle
                        .check(Invariant::NoticeCoverage, known, Some(n), at, || {
                            format!("advanced past n{q}.{ivl} without its write notices")
                        });
                }
            }
        } else {
            self.ctl[n].vt.merge(vt);
        }
    }

    /// Applies incoming write notices at node `n`: record, and invalidate
    /// resident pages.
    pub(super) fn apply_notices(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        notices: &[WriteNotice],
    ) {
        // If an incoming notice invalidates a page we have dirtied in the
        // still-open interval, close the interval first: those writes
        // logically belong to the interval ended by our last release and
        // must get their own write notice, or remote copies would never
        // be invalidated for them.
        let must_close = {
            let cell = self.cells[n].lock();
            notices
                .iter()
                .any(|wn| wn.writer != n && cell.dirty.contains(&wn.page.0))
        };
        if must_close {
            self.close_interval(proto, n);
        }
        for wn in notices {
            if wn.writer == n {
                continue;
            }
            // Record in the store (for later lock-grant computation).
            let slot = self.ctl[n].notice_store[wn.writer]
                .entry(wn.interval)
                .or_default();
            if !slot.contains(&wn.page) {
                slot.push(wn.page);
            }
            if self.cfg.verify {
                let at = self.ctl[n].sched.clock;
                self.trace.record(
                    at,
                    TraceEvent::NoticeCreated {
                        node: n,
                        writer: wn.writer,
                        interval: wn.interval,
                        page: wn.page,
                    },
                );
            }
            if wn.interval <= self.ctl[n].applied_ivl(wn.page.0, wn.writer) {
                continue; // already reflected in our copy
            }
            let pend = self.ctl[n].pending.entry(wn.page.0).or_default();
            if !pend.contains(&(wn.writer, wn.interval)) {
                pend.push((wn.writer, wn.interval));
            }
            let p = wn.page.0;
            // Remember which span delivered the notice: a later fault on
            // this page is *caused* by it, and links as its child.
            if self.cur_span != 0 {
                self.page_cause.insert(p, self.cur_span);
            }
            let state = self.cells[n].lock().state[p];
            if state.readable() {
                let skip = self.inject_hits(|f| match f {
                    InjectFault::SkipInvalidate { nth } => Some(*nth),
                    _ => None,
                });
                if !skip {
                    // If we were concurrently writing it, extract our diff
                    // before losing the twin.
                    let _ = self.ensure_extracted(n, p);
                    let mut cell = self.cells[n].lock();
                    cell.clear_twin(p);
                    cell.dirty.remove(&p);
                    cell.state[p] = PageState::Invalid;
                    drop(cell);
                    self.attr.page_mut(p).invalidations += 1;
                    let at = self.ctl[n].sched.clock;
                    self.trace.record(
                        at,
                        TraceEvent::Invalidated {
                            node: n,
                            page: wn.page,
                            writer: wn.writer,
                        },
                    );
                }
            }
            if self.oracle.enabled() {
                // The notice is now pending: a still-readable copy would
                // serve stale data.
                let readable = self.cells[n].lock().state[p].readable();
                let at = self.ctl[n].sched.clock;
                self.oracle.check(
                    Invariant::PendingImpliesInvalid,
                    !readable,
                    Some(n),
                    at,
                    || {
                        format!(
                            "{} still readable with pending notice n{}.{}",
                            wn.page, wn.writer, wn.interval
                        )
                    },
                );
            }
        }
    }
}
