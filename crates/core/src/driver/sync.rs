//! Sync services: the distributed lock manager (with local-queue
//! preference), the barrier master, local and global reductions, and the
//! startup / end-of-measurement rendezvous.
//!
//! Synchronization is where lazy consistency information travels — lock
//! grants and barrier releases carry vector times and write notices — so
//! this layer calls into the shared coherence mechanism
//! (`close_interval`, `apply_notices`, `checked_merge`) but never into a
//! specific protocol.

use cvm_net::NetworkSim;
use cvm_sim::{ShardMap, ShardedEventQueue, SimRng, VirtualTime};

use cvm_memsim::MemSystem;

use crate::barrier::ReduceOp;
use crate::interval::{VectorTime, WriteNotice};
use crate::lock::{AcquireOutcome, ForwardOutcome, ReleaseOutcome};
use crate::msg::Payload;
use crate::oracle::{InjectFault, Invariant};
use crate::page::PageState;
use crate::report::NodeBreakdown;
use crate::span::{SpanKind, SpanResource};
use crate::trace::TraceEvent;

use super::{Coherence, DriverCore, MAX_LOCKS};

impl DriverCore {
    pub(super) fn handle_acquire(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        tid: usize,
        lock: usize,
    ) {
        Invariant::LockIndexInRange.require(lock < MAX_LOCKS, || {
            format!("lock index {lock} outside the static table of {MAX_LOCKS}")
        });
        match self.ctl[n].locks[lock].try_acquire(tid) {
            AcquireOutcome::LocalGrant => {
                self.stats.local_lock_acquires += 1;
                self.attr.lock_mut(lock).local_acquires += 1;
                self.ctl[n].sched.ready.push_back(tid);
            }
            AcquireOutcome::QueuedLocally => {
                self.stats.block_same_lock += 1;
                self.attr.lock_mut(lock).contended += 1;
            }
            AcquireOutcome::SendRequest => {
                self.note_request_initiated(n);
                let at = self.ctl[n].sched.clock;
                self.trace
                    .record(at, TraceEvent::LockRequested { node: n, lock });
                self.stats.remote_locks += 1;
                self.ctl[n].out_locks += 1;
                self.attr.lock_mut(lock).remote_acquires += 1;
                self.lock_req_at.insert((n, lock), at);
                let now = self.ctl[n].sched.clock;
                // The acquire span covers request to grant; the request
                // (and any forward the manager issues inside the same
                // ambient context) rides in it.
                let span =
                    self.spans
                        .open(SpanKind::LockAcquire, n, SpanResource::Lock(lock), 0, now);
                self.lock_span.insert((n, lock), span);
                self.cur_span = span;
                let vt = self.ctl[n].vt.clone();
                let mgr = lock % self.cfg.nodes;
                if mgr == n {
                    self.manager_handle(proto, n, lock, n, vt, now);
                } else {
                    self.send(
                        proto,
                        n,
                        mgr,
                        Payload::LockRequest {
                            lock,
                            acquirer: n,
                            vt,
                        },
                        now,
                    );
                }
                self.cur_span = 0;
            }
        }
    }

    pub(super) fn handle_release(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        tid: usize,
        lock: usize,
    ) {
        let now = self.ctl[n].sched.clock;
        let prefer_local = self.cfg.prefer_local_lock_waiters;
        let grant_cap = self.cfg.local_grant_cap;
        match self.ctl[n].locks[lock].release(tid, prefer_local, grant_cap) {
            ReleaseOutcome::LocalHandoff(next) => {
                self.stats.local_lock_handoffs += 1;
                self.attr.lock_mut(lock).local_handoffs += 1;
                self.trace
                    .record(now, TraceEvent::LockLocalHandoff { node: n, lock });
                self.ctl[n].sched.ready.push_back(next);
            }
            ReleaseOutcome::GrantRemote(node, avt) => {
                self.grant_lock(proto, n, lock, node, &avt, now);
                // Ablation path: with fair ordering, remaining local
                // waiters must re-request the token remotely.
                if !self.ctl[n].locks[lock].local_queue.is_empty()
                    && !self.ctl[n].locks[lock].requested
                {
                    self.ctl[n].locks[lock].requested = true;
                    self.note_request_initiated(n);
                    self.stats.remote_locks += 1;
                    self.ctl[n].out_locks += 1;
                    self.attr.lock_mut(lock).remote_acquires += 1;
                    self.lock_req_at.insert((n, lock), now);
                    let span =
                        self.spans
                            .open(SpanKind::LockAcquire, n, SpanResource::Lock(lock), 0, now);
                    self.lock_span.insert((n, lock), span);
                    self.cur_span = span;
                    let vt = self.ctl[n].vt.clone();
                    let mgr = lock % self.cfg.nodes;
                    if mgr == n {
                        self.manager_handle(proto, n, lock, n, vt, now);
                    } else {
                        self.send(
                            proto,
                            n,
                            mgr,
                            Payload::LockRequest {
                                lock,
                                acquirer: n,
                                vt,
                            },
                            now,
                        );
                    }
                    self.cur_span = 0;
                }
            }
            ReleaseOutcome::KeepCached => {}
        }
        // The releasing thread continues immediately (front of the queue,
        // no switch charge since it is the same thread).
        self.ctl[n].sched.ready.push_front(tid);
    }

    pub(super) fn handle_barrier(&mut self, proto: &mut dyn Coherence, n: usize, tid: usize) {
        let last = self.ctl[n].nb.arrive_local(tid, self.cfg.threads_per_node);
        let now = self.ctl[n].sched.clock;
        if !last {
            if !self.cfg.aggregate_barriers {
                // Ablation: every thread sends its own arrival message
                // (consistency information still flows once, with the
                // node's final arrival).
                let vt = self.ctl[n].vt.clone();
                self.arrive_at_master(proto, n, vt, Vec::new(), now);
            }
            return;
        }
        self.close_interval(proto, n);
        let latest = self.ctl[n].log.latest();
        let since = self.ctl[n].nb.notices_sent_upto;
        let mut notices = self.ctl[n].log.notices_between(n, since, latest);
        self.ctl[n].nb.notices_sent_upto = latest;
        if self.cfg.inject.is_some() {
            notices.retain(|_| {
                !self.inject_hits(|f| match f {
                    InjectFault::DropWriteNotice { nth } => Some(*nth),
                    _ => None,
                })
            });
        }
        let vt = self.ctl[n].vt.clone();
        self.arrive_at_master(proto, n, vt, notices, now);
    }

    fn arrive_at_master(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        vt: VectorTime,
        notices: Vec<WriteNotice>,
        now: VirtualTime,
    ) {
        self.trace.record(
            now,
            TraceEvent::BarrierArrived {
                node: n,
                epoch: self.master.epoch(),
            },
        );
        // First arrival starts the node's stall clock (the non-aggregated
        // ablation arrives once per thread).
        if self.barrier_arrived_at[n].is_none() {
            self.barrier_arrived_at[n] = Some(now);
            // One Barrier span per node per episode: arrival to release.
            self.barrier_span[n] = self.spans.open(
                SpanKind::Barrier,
                n,
                SpanResource::Barrier(self.master.epoch()),
                0,
                now,
            );
        }
        let saved = self.cur_span;
        self.cur_span = self.barrier_span[n];
        if n == 0 {
            self.master_arrive(proto, n, vt, notices, now);
        } else {
            let epoch = self.master.epoch();
            self.send(
                proto,
                n,
                0,
                Payload::BarrierArrive {
                    epoch,
                    node: n,
                    vt,
                    notices,
                },
                now,
            );
        }
        self.cur_span = saved;
    }

    /// Feeds one arrival to the barrier master, auditing the arrival count
    /// first so a broken episode records a finding instead of tripping the
    /// master's internal assert.
    pub(super) fn master_arrive(
        &mut self,
        proto: &mut dyn Coherence,
        from: usize,
        vt: VectorTime,
        notices: Vec<WriteNotice>,
        t: VirtualTime,
    ) {
        if self.master.arrived() >= self.master.expected() {
            self.oracle
                .check(Invariant::BarrierArrivalCount, false, Some(from), t, || {
                    format!(
                        "arrival past the {} expected in episode {}",
                        self.master.expected(),
                        self.master.epoch()
                    )
                });
            return;
        }
        if self.master.arrive(&vt, notices) {
            self.barrier_release(proto, t);
        }
    }

    pub(super) fn handle_local_barrier(
        &mut self,
        n: usize,
        tid: usize,
        reduce: Option<(ReduceOp, f64)>,
    ) {
        let last = self.ctl[n]
            .lb
            .arrive(tid, reduce, self.cfg.threads_per_node);
        if !last {
            return;
        }
        self.stats.local_barriers += 1;
        let (woken, val) = self.ctl[n].lb.complete();
        self.cells[n].lock().lb_result = val.unwrap_or(0.0);
        for t in woken {
            self.ctl[n].sched.ready.push_back(t);
        }
    }

    pub(super) fn handle_end_measure(&mut self, _tid: usize) {
        self.endm_arrived += 1;
        if self.endm_arrived < self.threads.len() {
            return;
        }
        self.endm_arrived = 0;
        debug_assert_eq!(
            self.planned_n, 0,
            "end-measure rendezvous with bursts in flight"
        );
        self.snapshot = Some(self.snapshot_report());
        // Wake everyone; the rendezvous acts as a barrier without cost.
        for tid in 0..self.threads.len() {
            let n = self.threads[tid].node;
            self.ctl[n].sched.ready.push_back(tid);
        }
        for n in 0..self.cfg.nodes {
            let at = self.ctl[n].sched.clock;
            self.schedule_resume(n, at);
        }
    }

    pub(super) fn handle_global_reduce(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        tid: usize,
        reduce: (ReduceOp, f64),
    ) {
        let last = self.ctl[n]
            .gred
            .arrive(tid, Some(reduce), self.cfg.threads_per_node);
        if !last {
            return;
        }
        // Threads stay parked in `gred.blocked` until the release; only
        // the per-node combined value travels.
        let acc = self.ctl[n].gred.reduce_acc.expect("contributions present");
        let now = self.ctl[n].sched.clock;
        // One Reduce span per node per episode: last local arrival to
        // release, mirroring the barrier span.
        self.reduce_span[n] = self
            .spans
            .open(SpanKind::Reduce, n, SpanResource::None, 0, now);
        let saved = self.cur_span;
        self.cur_span = self.reduce_span[n];
        if n == 0 {
            self.reduce_arrive_at_master(proto, 0, reduce.0, acc, now);
        } else {
            self.send(
                proto,
                n,
                0,
                Payload::ReduceArrive {
                    node: n,
                    op: reduce.0,
                    value: acc,
                },
                now,
            );
        }
        self.cur_span = saved;
    }

    pub(super) fn reduce_arrive_at_master(
        &mut self,
        proto: &mut dyn Coherence,
        _node: usize,
        op: ReduceOp,
        value: f64,
        t: VirtualTime,
    ) {
        self.gred_count += 1;
        self.gred_acc = Some(match self.gred_acc {
            Some(acc) => op.combine(acc, value),
            None => value,
        });
        self.gred_op = Some(op);
        if self.gred_count < self.cfg.nodes {
            return;
        }
        let result = self.gred_acc.take().expect("accumulated");
        self.gred_count = 0;
        self.gred_op = None;
        self.stats.global_reduces += 1;
        let saved = self.cur_span;
        for q in 1..self.cfg.nodes {
            // As with barriers, each release rides in the recipient's span.
            self.cur_span = self.reduce_span[q];
            self.send(proto, 0, q, Payload::ReduceRelease { value: result }, t);
        }
        self.cur_span = saved;
        self.apply_reduce_release(0, result, t);
    }

    pub(super) fn apply_reduce_release(&mut self, n: usize, value: f64, t: VirtualTime) {
        let span = std::mem::replace(&mut self.reduce_span[n], 0);
        self.spans.close(span, t);
        self.cells[n].lock().gr_result = value;
        let (woken, _) = self.ctl[n].gred.complete();
        for tid in woken {
            self.make_ready(n, tid, t);
        }
    }

    pub(super) fn handle_startup(&mut self, proto: &mut dyn Coherence) {
        self.startup_arrived += 1;
        if self.startup_arrived < self.threads.len() {
            return;
        }
        self.startup_reset(proto);
    }

    /// Makes global data uniform across nodes and zeroes all measurements:
    /// the paper's "global data is consistent across all nodes until
    /// startup has finished".
    fn startup_reset(&mut self, proto: &mut dyn Coherence) {
        // The rendezvous fires only when every thread has arrived, i.e.
        // blocked — a pre-started burst is a thread that has not blocked
        // yet, so none can be in flight while we tear the queues down.
        assert_eq!(
            self.planned_n, 0,
            "startup rendezvous with bursts in flight"
        );
        self.oracle.check(
            Invariant::QuiescentStartup,
            self.net.in_flight() == 0,
            None,
            VirtualTime::ZERO,
            || format!("{} messages in flight at startup", self.net.in_flight()),
        );
        let init_mem = {
            let mut c0 = self.cells[0].lock();
            c0.clear_twins();
            c0.dirty.clear();
            c0.twin_creations = 0;
            c0.mem.clone()
        };
        for (n, cell) in self.cells.iter().enumerate() {
            let mut c = cell.lock();
            if n != 0 {
                c.mem.copy_from_slice(&init_mem);
                c.twin_creations = 0;
            }
            for s in &mut c.state {
                *s = PageState::ReadOnly;
            }
            if self.cfg.memsim_enabled {
                c.memsim = Some(MemSystem::new(self.cfg.mem));
            }
            // Warm-up twins must not count toward the measured peaks.
            c.reset_mem_peaks();
            // Measurement starts here: requests recorded during init
            // (there should be none, but the reset is what guarantees it)
            // and any stale clock reads are discarded.
            c.req_hist = cvm_sim::Log2Hist::default();
            c.now_ns = 0;
            self.twin_live_seen[n] = c.twin_bytes_live;
        }
        self.twin_live_sum = self.twin_live_seen.iter().sum();
        self.twin_global_peak = self.twin_live_sum;
        for ctl in &mut self.ctl {
            ctl.sched.clock = VirtualTime::ZERO;
            ctl.sched.last_ran = None;
            ctl.sched.idle_since = None;
            ctl.breakdown = NodeBreakdown::default();
            ctl.cache_peak = ctl.cache_bytes;
            debug_assert!(ctl.fetches.is_empty());
            debug_assert!(ctl.pending.is_empty());
        }
        self.cache_live_sum = self.ctl.iter().map(|c| c.cache_bytes).sum();
        self.cache_global_peak = self.cache_live_sum;
        // The burst/overlap ledger measures the same region as
        // `total_time`: from `startup_done` on. The serial init burst
        // would otherwise drown the modelled speedup in Amdahl's law.
        self.burst_total_ns = 0;
        self.overlap_saved_ns = 0;
        self.win_sum_ns = 0;
        self.win_max_ns = 0;
        self.stats.reset();
        self.trace.reset();
        self.hist.reset();
        self.attr.reset();
        self.lock_req_at.clear();
        self.lock_hops.clear();
        for slot in &mut self.barrier_arrived_at {
            *slot = None;
        }
        // Span ids restart at 1 so the measured region's forest is
        // identical no matter what startup did.
        self.spans.reset();
        self.cur_span = 0;
        self.page_cause.clear();
        self.barrier_span.fill(0);
        self.reduce_span.fill(0);
        self.lock_span.clear();
        proto.reset(self);
        self.net = NetworkSim::new(self.cfg.nodes, self.cfg.latency.clone());
        let mut rng = SimRng::seed_from(self.cfg.seed ^ 0xBEEF);
        if !self.cfg.jitter_max.is_zero() {
            self.net.set_jitter(rng.derive(0x7177), self.cfg.jitter_max);
        }
        if let Some(loss) = self.cfg.loss {
            self.net.enable_loss(rng.derive(0xDEAD), loss);
        }
        if let Some(plan) = self.cfg.faults.as_ref().filter(|p| !p.is_empty()) {
            if self.cfg.loss.is_none() {
                self.net
                    .enable_loss(rng.derive(0xDEAD), cvm_net::LossConfig::clean_adaptive());
            }
            self.net.set_faults(rng.derive(0xFA17), plan.clone());
        }
        self.mainq = ShardedEventQueue::new(
            ShardMap::new(self.cfg.nodes, self.cfg.shards),
            self.cfg.threads_per_node,
        );
        for n in 0..self.cfg.nodes {
            self.ctl[n].sched.resume_scheduled = false;
        }
        for tid in 0..self.threads.len() {
            let n = self.threads[tid].node;
            self.ctl[n].sched.ready.push_back(tid);
        }
        for n in 0..self.cfg.nodes {
            self.schedule_resume(n, VirtualTime::ZERO);
        }
        self.startup_arrived = 0;
    }

    /// Notices for every interval (any writer) in `granter`'s vector time
    /// but not in `acq_vt` — the LRC grant payload.
    fn notices_for_grant(&self, granter: usize, acq_vt: &VectorTime) -> Vec<WriteNotice> {
        let ctl = &self.ctl[granter];
        let mut out = Vec::new();
        for q in 0..self.cfg.nodes {
            let from = acq_vt.get(q);
            let to = ctl.vt.get(q);
            if to <= from {
                continue;
            }
            for (&ivl, pages) in ctl.notice_store[q].range(from + 1..=to) {
                for &page in pages {
                    out.push(WriteNotice {
                        writer: q,
                        interval: ivl,
                        page,
                    });
                }
            }
        }
        out
    }

    fn grant_lock(
        &mut self,
        proto: &mut dyn Coherence,
        granter: usize,
        lock: usize,
        to: usize,
        acq_vt: &VectorTime,
        t: VirtualTime,
    ) {
        // Whatever context we grant from (a release, a parked forward, a
        // just-arrived forward), the grant belongs to the *acquirer's*
        // LockAcquire span.
        let saved = self.cur_span;
        self.cur_span = self.lock_span.get(&(to, lock)).copied().unwrap_or(0);
        self.close_interval(proto, granter);
        let mut notices = self.notices_for_grant(granter, acq_vt);
        // Mutation self-test hook: strip the nth notice-carrying grant.
        // The grant's vector time still travels, so the grantee's clock
        // advances past writes it was never told to invalidate.
        if !notices.is_empty()
            && self.inject_hits(|f| match f {
                InjectFault::DropGrantNotice { nth } => Some(*nth),
                _ => None,
            })
        {
            notices.clear();
        }
        let vt = self.ctl[granter].vt.clone();
        if self.cfg.verify {
            self.trace.record(
                t,
                TraceEvent::LockTransfer {
                    lock,
                    from: granter,
                    to,
                },
            );
        }
        self.send(
            proto,
            granter,
            to,
            Payload::LockGrant { lock, vt, notices },
            t,
        );
        self.cur_span = saved;
    }

    pub(super) fn manager_handle(
        &mut self,
        proto: &mut dyn Coherence,
        mgr_node: usize,
        lock: usize,
        acquirer: usize,
        vt: VectorTime,
        t: VirtualTime,
    ) {
        let prev = self.lock_mgrs[lock].enqueue(acquirer);
        self.oracle.check(
            Invariant::SingleLockRequest,
            prev != acquirer,
            Some(acquirer),
            t,
            || format!("double request for lock {lock} from n{acquirer}"),
        );
        if prev == acquirer {
            // Recording mode: forwarding a node to itself would wedge the
            // distributed queue; stop after the finding.
            return;
        }
        // The manager decides the grant's path length here: token at the
        // manager → 2 hops, forwarded to the current owner → 3 hops.
        let hops = if prev == mgr_node { 2 } else { 3 };
        self.lock_hops.insert((lock, acquirer), hops);
        if prev == mgr_node {
            self.forward_at(proto, prev, lock, acquirer, vt, t);
        } else {
            self.send(
                proto,
                mgr_node,
                prev,
                Payload::LockForward { lock, acquirer, vt },
                t,
            );
        }
    }

    pub(super) fn forward_at(
        &mut self,
        proto: &mut dyn Coherence,
        owner: usize,
        lock: usize,
        acquirer: usize,
        vt: VectorTime,
        t: VirtualTime,
    ) {
        match self.ctl[owner].locks[lock].handle_forward(acquirer, vt) {
            ForwardOutcome::GrantNow(to, avt) => self.grant_lock(proto, owner, lock, to, &avt, t),
            ForwardOutcome::Parked => {}
        }
    }

    /// A lock grant arrived at the acquirer: absorb the consistency
    /// information it carries and wake the waiting thread.
    pub(super) fn handle_lock_grant(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        lock: usize,
        vt: VectorTime,
        notices: Vec<WriteNotice>,
        t: VirtualTime,
    ) {
        if self.oracle.enabled() {
            // The token is in flight to us: no node may still hold
            // it cached, and we must have an outstanding request
            // with a thread waiting — otherwise the wakeup is lost.
            let owners = (0..self.cfg.nodes)
                .filter(|&q| self.ctl[q].locks[lock].cached)
                .count();
            self.oracle
                .check(Invariant::LockSingleToken, owners == 0, Some(n), t, || {
                    format!("lock {lock} granted while {owners} node(s) hold the token")
                });
            let lk = &self.ctl[n].locks[lock];
            let has_waiter = lk.requested && !lk.local_queue.is_empty();
            self.oracle.check(
                Invariant::LockGrantHasWaiter,
                has_waiter,
                Some(n),
                t,
                || format!("grant of lock {lock} with no requesting waiter"),
            );
            if !has_waiter {
                return;
            }
        }
        self.apply_notices(proto, n, &notices);
        self.checked_merge(n, &vt, t);
        self.trace
            .record(t, TraceEvent::LockGranted { node: n, lock });
        let span = self.lock_span.remove(&(n, lock)).unwrap_or(0);
        self.spans.close(span, t);
        if let Some(started) = self.lock_req_at.remove(&(n, lock)) {
            let ns = t.since(started).as_ns();
            match self.lock_hops.remove(&(lock, n)) {
                Some(3) => {
                    self.hist.lock_3hop_ns.record(ns);
                    self.attr.lock_mut(lock).three_hop += 1;
                    self.spans.set_hop_count(span, 3);
                }
                _ => {
                    self.hist.lock_2hop_ns.record(ns);
                    self.spans.set_hop_count(span, 2);
                }
            }
        }
        if let Some(rec) = self.spans.get(span) {
            self.attr.lock_mut(lock).acquire_span_ns += rec.duration_ns();
        }
        let tid = self.ctl[n].locks[lock].apply_grant();
        self.ctl[n].out_locks -= 1;
        self.make_ready(n, tid, t);
    }

    fn barrier_release(&mut self, proto: &mut dyn Coherence, t: VirtualTime) {
        let (vt, notices) = self.master.release();
        self.stats.barriers_crossed += 1;
        self.trace.record(
            t,
            TraceEvent::BarrierReleased {
                epoch: self.master.epoch(),
                notices: notices.len(),
            },
        );
        // Aggregated: one release per node; ablation: one per thread.
        let copies = if self.cfg.aggregate_barriers {
            1
        } else {
            self.cfg.threads_per_node
        };
        let saved = self.cur_span;
        for q in 1..self.cfg.nodes {
            // Each release rides in the *recipient's* Barrier span, so
            // its wire and handler time land on that node's episode.
            self.cur_span = self.barrier_span[q];
            for _ in 0..copies {
                self.send(
                    proto,
                    0,
                    q,
                    Payload::BarrierRelease {
                        epoch: self.master.epoch(),
                        vt: vt.clone(),
                        notices: notices.clone(),
                    },
                    t,
                );
            }
        }
        self.ctl[0].release_seen = self.master.epoch();
        self.cur_span = self.barrier_span[0];
        self.apply_release(proto, 0, vt, notices, t);
        self.cur_span = saved;
    }

    pub(super) fn apply_release(
        &mut self,
        proto: &mut dyn Coherence,
        n: usize,
        vt: VectorTime,
        notices: Vec<WriteNotice>,
        t: VirtualTime,
    ) {
        if let Some(started) = self.barrier_arrived_at[n].take() {
            // Node clocks diverge, so the master-side release time can
            // precede a fast node's arrival clock; its stall is then zero.
            let stall = t.max(started).since(started);
            self.hist.barrier_stall_ns.record(stall.as_ns());
            let span = std::mem::replace(&mut self.barrier_span[n], 0);
            self.spans.close(span, t.max(started));
        }
        self.apply_notices(proto, n, &notices);
        self.checked_merge(n, &vt, t);
        let woken = self.ctl[n].nb.take_blocked();
        for tid in woken {
            self.make_ready(n, tid, t);
        }
    }
}
