//! Per-node state shared between the driver and the node's application
//! threads.
//!
//! [`NodeCell`] holds everything the instrumented access path needs on its
//! fast path: the node's copy of the shared segment, the per-page
//! protection states, twins, the dirty set and the (optional) memory-system
//! simulator. It is wrapped in a mutex, but the baton discipline of
//! [`cvm_sim::coop`] means the lock is never contended.

use std::collections::BTreeSet;

use cvm_memsim::MemSystem;
use cvm_sim::Log2Hist;

use crate::page::PageState;

/// Retired twin buffers kept for reuse. Steady-state twin churn is
/// create-at-fault / discard-at-invalidate over a small working set, so a
/// handful of pooled pages absorbs nearly all of it; anything beyond the
/// cap is genuinely idle memory and is returned to the allocator.
const TWIN_POOL_CAP: usize = 8;

/// One node's memory-side state.
#[derive(Debug)]
pub struct NodeCell {
    /// Coherence page size.
    pub page_size: usize,
    /// This node's copy of the whole shared segment.
    pub mem: Vec<u8>,
    /// Protection state per page.
    pub state: Vec<PageState>,
    /// Twins of dirty pages (pristine copies for diffing), directly
    /// indexed by page number. A flat page table instead of a hash map:
    /// the twin lookup sits on the per-fault fast path, and the sweep's
    /// page counts are small enough that one `Option` per page is cheap.
    twins: Vec<Option<Vec<u8>>>,
    /// Pages written during the current open interval.
    pub dirty: BTreeSet<usize>,
    /// Virtual nanoseconds consumed by the running thread since the driver
    /// last drained it.
    pub burst_ns: u64,
    /// Result slot for local-barrier reductions.
    pub lb_result: f64,
    /// Result slot for global reductions.
    pub gr_result: f64,
    /// Result slot for virtual-clock reads ([`BlockReason::Now`]
    /// (crate::BlockReason::Now)): the driver writes the node clock here
    /// before resuming the reader.
    pub now_ns: u64,
    /// Request latencies recorded by this node's threads
    /// ([`ThreadCtx::record_request`](crate::ThreadCtx::record_request));
    /// merged into the run report's `request` histogram at snapshot.
    pub req_hist: Log2Hist,
    /// The node's cache/TLB simulator, if enabled.
    pub memsim: Option<MemSystem>,
    /// Twins created (local write faults that copied a page).
    pub twin_creations: u64,
    /// Bytes currently held in live twins.
    pub twin_bytes_live: u64,
    /// High-water mark of `twin_bytes_live` over the run.
    pub twin_bytes_peak: u64,
    /// Retired twin buffers, reused by the next `ensure_twin` so the
    /// fault fast path allocates only when the live twin count grows past
    /// its previous maximum.
    twin_pool: Vec<Vec<u8>>,
    /// When set, the access path appends touched pages to
    /// `step_reads`/`step_writes` (model-checker step recording).
    pub track_steps: bool,
    /// Pages read during the current burst (deduplicated), drained by the
    /// driver alongside the burst time.
    step_reads: Vec<u32>,
    /// Pages written during the current burst (deduplicated).
    step_writes: Vec<u32>,
}

impl NodeCell {
    /// Creates a node with `pages` unmapped pages.
    pub fn new(page_size: usize, pages: usize, memsim: Option<MemSystem>) -> Self {
        NodeCell {
            page_size,
            mem: vec![0; page_size * pages],
            state: vec![PageState::Unmapped; pages],
            twins: vec![None; pages],
            dirty: BTreeSet::new(),
            burst_ns: 0,
            lb_result: 0.0,
            gr_result: 0.0,
            now_ns: 0,
            req_hist: Log2Hist::default(),
            memsim,
            twin_creations: 0,
            twin_bytes_live: 0,
            twin_bytes_peak: 0,
            twin_pool: Vec::new(),
            track_steps: false,
            step_reads: Vec::new(),
            step_writes: Vec::new(),
        }
    }

    /// Number of pages.
    pub fn pages(&self) -> usize {
        self.state.len()
    }

    /// Borrow of one page's bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_bytes(&self, page: usize) -> &[u8] {
        let b = page * self.page_size;
        &self.mem[b..b + self.page_size]
    }

    /// Mutable borrow of one page's bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_bytes_mut(&mut self, page: usize) -> &mut [u8] {
        let b = page * self.page_size;
        &mut self.mem[b..b + self.page_size]
    }

    /// Creates (or keeps) the twin for `page` and marks it dirty. Returns
    /// `true` if a fresh copy was made (for cost accounting).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn ensure_twin(&mut self, page: usize) -> bool {
        self.dirty.insert(page);
        if self.twins[page].is_some() {
            false
        } else {
            let mut buf = self.twin_pool.pop().unwrap_or_default();
            buf.resize(self.page_size, 0);
            let b = page * self.page_size;
            buf.copy_from_slice(&self.mem[b..b + self.page_size]);
            self.twins[page] = Some(buf);
            self.twin_creations += 1;
            self.twin_bytes_live += self.page_size as u64;
            self.twin_bytes_peak = self.twin_bytes_peak.max(self.twin_bytes_live);
            true
        }
    }

    /// The twin of `page`, if one exists.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn twin(&self, page: usize) -> Option<&[u8]> {
        self.twins[page].as_deref()
    }

    /// Mutable access to the twin of `page`, if one exists (the
    /// home-based protocol patches incoming flushes into a concurrent
    /// writer's twin so later diffs cover only the writer's own stores).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn twin_mut(&mut self, page: usize) -> Option<&mut [u8]> {
        self.twins[page].as_deref_mut()
    }

    /// True if `page` currently has a twin.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn has_twin(&self, page: usize) -> bool {
        self.twins[page].is_some()
    }

    /// Replaces (or installs) the twin of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn set_twin(&mut self, page: usize, data: Vec<u8>) {
        debug_assert_eq!(data.len(), self.page_size, "twin must be page sized");
        if let Some(old) = self.twins[page].replace(data) {
            self.pool_buf(old);
        } else {
            self.twin_bytes_live += self.page_size as u64;
            self.twin_bytes_peak = self.twin_bytes_peak.max(self.twin_bytes_live);
        }
    }

    /// Refreshes the existing twin of `page` in place from the page's
    /// current contents — the zero-allocation form of
    /// `set_twin(page, page_bytes(page).to_vec())` used when an interval
    /// closes but the page stays writable.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or has no twin.
    pub fn refresh_twin(&mut self, page: usize) {
        let b = page * self.page_size;
        let twin = self.twins[page]
            .as_mut()
            .expect("refresh of a missing twin");
        twin.copy_from_slice(&self.mem[b..b + self.page_size]);
    }

    /// Discards the twin of `page`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn clear_twin(&mut self, page: usize) {
        if let Some(old) = self.twins[page].take() {
            self.twin_bytes_live -= self.page_size as u64;
            self.pool_buf(old);
        }
    }

    /// Discards every twin (startup reset).
    pub fn clear_twins(&mut self) {
        for p in 0..self.twins.len() {
            self.clear_twin(p);
        }
    }

    /// Resets the twin high-water mark to the current live level (startup
    /// reset: warm-up twins must not count toward the measured peak).
    pub fn reset_mem_peaks(&mut self) {
        self.twin_bytes_peak = self.twin_bytes_live;
    }

    fn pool_buf(&mut self, buf: Vec<u8>) {
        if self.twin_pool.len() < TWIN_POOL_CAP {
            self.twin_pool.push(buf);
        }
    }

    /// Drains the dirty set (at interval close), write-protecting the pages
    /// so later writes start a new notice.
    pub fn close_dirty(&mut self) -> Vec<usize> {
        let pages: Vec<usize> = std::mem::take(&mut self.dirty).into_iter().collect();
        for &p in &pages {
            if self.state[p] == PageState::ReadWrite {
                self.state[p] = PageState::ReadOnly;
            }
        }
        pages
    }

    /// Takes the accumulated burst time.
    pub fn drain_burst(&mut self) -> u64 {
        std::mem::take(&mut self.burst_ns)
    }

    /// Records a shared read of `page` into the current burst footprint
    /// (only meaningful while `track_steps` is set).
    pub fn note_step_read(&mut self, page: usize) {
        let p = u32::try_from(page).expect("page index fits u32");
        if !self.step_reads.contains(&p) {
            self.step_reads.push(p);
        }
    }

    /// Records a shared write of `page` into the current burst footprint.
    pub fn note_step_write(&mut self, page: usize) {
        let p = u32::try_from(page).expect("page index fits u32");
        if !self.step_writes.contains(&p) {
            self.step_writes.push(p);
        }
    }

    /// Takes the burst's `(reads, writes)` page footprint.
    pub fn drain_step_pages(&mut self) -> (Vec<u32>, Vec<u32>) {
        (
            std::mem::take(&mut self.step_reads),
            std::mem::take(&mut self.step_writes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twin_is_snapshot() {
        let mut c = NodeCell::new(64, 2, None);
        c.mem[10] = 7;
        assert!(c.ensure_twin(0));
        c.mem[10] = 9;
        assert_eq!(c.twin(0).expect("twin exists")[10], 7);
        assert!(!c.ensure_twin(0), "second call reuses the twin");
        assert_eq!(c.twin_creations, 1);
        c.clear_twin(0);
        assert!(!c.has_twin(0));
    }

    #[test]
    fn close_dirty_write_protects() {
        let mut c = NodeCell::new(64, 3, None);
        c.state[1] = PageState::ReadWrite;
        c.ensure_twin(1);
        let closed = c.close_dirty();
        assert_eq!(closed, vec![1]);
        assert_eq!(c.state[1], PageState::ReadOnly);
        assert!(c.dirty.is_empty());
        assert!(c.has_twin(1), "twin survives the close");
    }

    #[test]
    fn burst_drain_resets() {
        let mut c = NodeCell::new(64, 1, None);
        c.burst_ns = 500;
        assert_eq!(c.drain_burst(), 500);
        assert_eq!(c.drain_burst(), 0);
    }

    #[test]
    fn twin_accounting_tracks_live_and_peak() {
        let mut c = NodeCell::new(64, 4, None);
        c.ensure_twin(0);
        c.ensure_twin(1);
        assert_eq!(c.twin_bytes_live, 128);
        assert_eq!(c.twin_bytes_peak, 128);
        c.clear_twin(0);
        assert_eq!(c.twin_bytes_live, 64);
        assert_eq!(c.twin_bytes_peak, 128, "peak survives the drop");
        c.set_twin(3, vec![0; 64]);
        assert_eq!(c.twin_bytes_live, 128);
        c.set_twin(3, vec![1; 64]);
        assert_eq!(c.twin_bytes_live, 128, "replace is live-neutral");
        c.reset_mem_peaks();
        assert_eq!(c.twin_bytes_peak, 128);
        c.clear_twins();
        assert_eq!(c.twin_bytes_live, 0);
    }

    #[test]
    fn retired_twin_buffers_are_pooled_and_reused() {
        let mut c = NodeCell::new(64, 2, None);
        c.mem[0] = 0xCC;
        c.ensure_twin(0);
        c.clear_twin(0);
        assert_eq!(c.twin_pool.len(), 1);
        c.mem[0] = 0xDD;
        c.ensure_twin(0);
        assert_eq!(c.twin_pool.len(), 0, "pooled buffer was reused");
        assert_eq!(
            c.twin(0).expect("twin exists")[0],
            0xDD,
            "reused buffer holds the fresh snapshot, not stale bytes"
        );
    }

    #[test]
    fn refresh_twin_snapshots_current_contents() {
        let mut c = NodeCell::new(64, 1, None);
        c.ensure_twin(0);
        c.mem[5] = 42;
        c.refresh_twin(0);
        assert_eq!(c.twin(0).expect("twin exists")[5], 42);
        assert_eq!(c.twin_bytes_live, 64);
    }

    #[test]
    fn page_slices_are_disjoint_views() {
        let mut c = NodeCell::new(64, 2, None);
        c.page_bytes_mut(1)[0] = 0xAA;
        assert_eq!(c.page_bytes(0)[0], 0);
        assert_eq!(c.page_bytes(1)[0], 0xAA);
    }
}
