//! Word-granularity diffs — the heart of the multiple-writer protocol.
//!
//! When a node first writes a read-only page, the fault handler saves a
//! *twin* (a pristine copy). When another node later needs the
//! modifications, a *diff* is created by a page-length comparison between
//! the current contents and the twin, and shipped instead of the whole
//! page. Concurrent diffs from different writers only overlap if the same
//! location was written without synchronization — a data race — so applying
//! them in timestamp order merges all modifications.

use std::fmt;
use std::sync::Arc;

use crate::page::PageId;

/// Comparison granularity: one 8-byte word, matching the paper's systems.
pub const DIFF_WORD: usize = 8;

/// Fast-path comparison granularity of [`Diff::create`]: four words
/// compared as one block (two 16-byte vector loads on current targets).
const WIDE_BLOCK: usize = 4 * DIFF_WORD;

/// A run of modified bytes within one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page (word aligned).
    pub offset: usize,
    /// The new bytes.
    pub data: Vec<u8>,
}

/// A summary of one writer's modifications to one page.
///
/// # Example
///
/// ```
/// use cvm_dsm::Diff;
/// use cvm_dsm::page::PageId;
///
/// let twin = vec![0u8; 64];
/// let mut cur = twin.clone();
/// cur[8] = 0xAB;
/// let d = Diff::create(PageId(0), &twin, &cur);
/// assert!(!d.is_empty());
/// let mut other = vec![0u8; 64];
/// d.apply(&mut other);
/// assert_eq!(other, cur);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    /// The page this diff summarizes.
    pub page: PageId,
    /// Modified runs in ascending offset order, shared by reference:
    /// a diff flows from the writer's cache into reply payloads and
    /// sometimes several concurrent fetches, and every hop used to deep-
    /// copy the run data. Cloning is now a reference-count bump — the
    /// bytes are written exactly once, at creation.
    pub runs: Arc<[DiffRun]>,
}

impl Diff {
    /// Creates a diff by comparing `twin` (pristine) against `current`,
    /// word by word, coalescing adjacent modified words into runs.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in length or are not word-multiples.
    pub fn create(page: PageId, twin: &[u8], current: &[u8]) -> Diff {
        assert_eq!(twin.len(), current.len(), "twin/current size mismatch");
        assert!(
            twin.len().is_multiple_of(DIFF_WORD),
            "page not word aligned"
        );
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut open: Option<DiffRun> = None;
        // Fast path: compare four words at a time. Most of any page is
        // unmodified, so the common case is an equal 32-byte block — one
        // wide compare instead of four word compares — and only unequal
        // blocks fall into the word-level scan. An equal block closes any
        // open run exactly like four equal words would, so the produced
        // runs are identical to a pure word-by-word pass.
        let wide_end = twin.len() / WIDE_BLOCK * WIDE_BLOCK;
        let mut off = 0;
        while off < wide_end {
            if twin[off..off + WIDE_BLOCK] == current[off..off + WIDE_BLOCK] {
                if let Some(run) = open.take() {
                    runs.push(run);
                }
            } else {
                scan_words(
                    &mut runs,
                    &mut open,
                    &twin[off..off + WIDE_BLOCK],
                    &current[off..off + WIDE_BLOCK],
                    off,
                );
            }
            off += WIDE_BLOCK;
        }
        // Word-multiple tail shorter than one wide block.
        if off < twin.len() {
            scan_words(&mut runs, &mut open, &twin[off..], &current[off..], off);
        }
        if let Some(run) = open {
            runs.push(run);
        }
        Diff {
            page,
            runs: runs.into(),
        }
    }

    /// Applies the diff to a page buffer.
    ///
    /// # Panics
    ///
    /// Panics if any run exceeds the buffer.
    pub fn apply(&self, page: &mut [u8]) {
        for run in self.runs.iter() {
            page[run.offset..run.offset + run.data.len()].copy_from_slice(&run.data);
        }
    }

    /// True if no words differed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total modified bytes.
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Modelled wire size: runs plus a small header each.
    pub fn wire_bytes(&self) -> usize {
        16 + self.runs.iter().map(|r| 8 + r.data.len()).sum::<usize>()
    }

    /// Number of 8-byte words compared to create a diff of a page of
    /// `page_size` bytes (for time charging).
    pub fn words_compared(page_size: usize) -> usize {
        page_size / DIFF_WORD
    }

    /// Number of words this diff writes when applied.
    pub fn words_applied(&self) -> usize {
        self.modified_bytes() / DIFF_WORD
    }

    /// The word indices this diff writes, ascending (runs are word
    /// aligned and sorted by offset).
    pub fn words(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs.iter().flat_map(|r| {
            let w0 = r.offset / DIFF_WORD;
            w0..w0 + r.data.len() / DIFF_WORD
        })
    }

    /// True if two diffs of the same page touch a common word — for
    /// race-free programs concurrent diffs never overlap.
    pub fn overlaps(&self, other: &Diff) -> bool {
        if self.page != other.page {
            return false;
        }
        for a in self.runs.iter() {
            let (a0, a1) = (a.offset, a.offset + a.data.len());
            for b in other.runs.iter() {
                let (b0, b1) = (b.offset, b.offset + b.data.len());
                if a0 < b1 && b0 < a1 {
                    return true;
                }
            }
        }
        false
    }
}

/// Word-level scan of one sub-range starting at byte offset `base`,
/// continuing the open-run state machine shared with [`Diff::create`].
fn scan_words(
    runs: &mut Vec<DiffRun>,
    open: &mut Option<DiffRun>,
    twin: &[u8],
    current: &[u8],
    base: usize,
) {
    let words = twin
        .chunks_exact(DIFF_WORD)
        .zip(current.chunks_exact(DIFF_WORD));
    for (w, (t, c)) in words.enumerate() {
        if t != c {
            match open {
                Some(run) => run.data.extend_from_slice(c),
                None => {
                    *open = Some(DiffRun {
                        offset: base + w * DIFF_WORD,
                        data: c.to_vec(),
                    });
                }
            }
        } else if let Some(run) = open.take() {
            runs.push(run);
        }
    }
}

impl fmt::Display for Diff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diff[{} runs, {} bytes on {}]",
            self.runs.len(),
            self.modified_bytes(),
            self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(b: u8, n: usize) -> Vec<u8> {
        vec![b; n]
    }

    #[test]
    fn empty_diff_for_identical_pages() {
        let twin = page_of(7, 128);
        let d = Diff::create(PageId(0), &twin, &twin);
        assert!(d.is_empty());
        assert_eq!(d.modified_bytes(), 0);
    }

    #[test]
    fn single_word_change() {
        let twin = page_of(0, 128);
        let mut cur = twin.clone();
        cur[40] = 1;
        let d = Diff::create(PageId(0), &twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 40);
        assert_eq!(d.runs[0].data.len(), DIFF_WORD);
    }

    #[test]
    fn adjacent_words_coalesce() {
        let twin = page_of(0, 128);
        let mut cur = twin.clone();
        cur[16] = 1;
        cur[24] = 2; // next word
        cur[48] = 3; // separate run
        let d = Diff::create(PageId(0), &twin, &cur);
        assert_eq!(d.runs.len(), 2);
        assert_eq!(d.runs[0].offset, 16);
        assert_eq!(d.runs[0].data.len(), 16);
        assert_eq!(d.runs[1].offset, 48);
    }

    #[test]
    fn apply_reconstructs_current() {
        let twin = page_of(9, 256);
        let mut cur = twin.clone();
        for i in (0..256).step_by(24) {
            cur[i] = cur[i].wrapping_add(i as u8 + 1);
        }
        let d = Diff::create(PageId(1), &twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn run_ending_at_page_end() {
        let twin = page_of(0, 64);
        let mut cur = twin.clone();
        cur[56] = 5; // last word
        let d = Diff::create(PageId(0), &twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 56);
    }

    #[test]
    fn disjoint_diffs_do_not_overlap() {
        let twin = page_of(0, 128);
        let mut a = twin.clone();
        let mut b = twin.clone();
        a[0] = 1;
        b[64] = 1;
        let da = Diff::create(PageId(0), &twin, &a);
        let db = Diff::create(PageId(0), &twin, &b);
        assert!(!da.overlaps(&db));
        // Applying both in either order yields the union.
        let mut m1 = twin.clone();
        da.apply(&mut m1);
        db.apply(&mut m1);
        let mut m2 = twin.clone();
        db.apply(&mut m2);
        da.apply(&mut m2);
        assert_eq!(m1, m2);
        assert_eq!(m1[0], 1);
        assert_eq!(m1[64], 1);
    }

    #[test]
    fn racing_diffs_overlap() {
        let twin = page_of(0, 64);
        let mut a = twin.clone();
        let mut b = twin.clone();
        a[8] = 1;
        b[8] = 2;
        let da = Diff::create(PageId(0), &twin, &a);
        let db = Diff::create(PageId(0), &twin, &b);
        assert!(da.overlaps(&db));
    }

    #[test]
    fn wire_bytes_tracks_content() {
        let twin = page_of(0, 8192);
        let mut cur = twin.clone();
        cur[0] = 1;
        let small = Diff::create(PageId(0), &twin, &cur);
        for i in (0..8192).step_by(8) {
            cur[i] = 0xFF;
        }
        let big = Diff::create(PageId(0), &twin, &cur);
        assert!(big.wire_bytes() > small.wire_bytes());
        assert!(big.wire_bytes() >= 8192);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_buffers_panic() {
        let _ = Diff::create(PageId(0), &[0; 8], &[0; 16]);
    }

    /// The reference semantics `create` must match: one open-run state
    /// machine over individual words, no wide blocks.
    fn create_word_by_word(page: PageId, twin: &[u8], current: &[u8]) -> Diff {
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut open: Option<DiffRun> = None;
        let words = twin
            .chunks_exact(DIFF_WORD)
            .zip(current.chunks_exact(DIFF_WORD));
        for (w, (t, c)) in words.enumerate() {
            if t != c {
                match &mut open {
                    Some(run) => run.data.extend_from_slice(c),
                    None => {
                        open = Some(DiffRun {
                            offset: w * DIFF_WORD,
                            data: c.to_vec(),
                        });
                    }
                }
            } else if let Some(run) = open.take() {
                runs.push(run);
            }
        }
        if let Some(run) = open {
            runs.push(run);
        }
        Diff {
            page,
            runs: runs.into(),
        }
    }

    #[test]
    fn wide_create_matches_word_reference() {
        let mut rng = cvm_sim::SimRng::seed_from(0xD1FF);
        // Sizes chosen to hit every path: block-multiple, word tail of
        // 1–3 words, and buffers shorter than one wide block.
        for &len in &[8usize, 16, 24, 32, 64, 96, 104, 120, 4096] {
            for density in [0u64, 1, 4, 16, 64] {
                let twin: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                let mut cur = twin.clone();
                for _ in 0..density {
                    let i = rng.below(len as u64) as usize;
                    cur[i] = cur[i].wrapping_add(1 + rng.below(255) as u8);
                }
                let wide = Diff::create(PageId(3), &twin, &cur);
                let naive = create_word_by_word(PageId(3), &twin, &cur);
                assert_eq!(wide, naive, "len={len} density={density}");
                let mut rebuilt = twin.clone();
                wide.apply(&mut rebuilt);
                assert_eq!(rebuilt, cur);
            }
        }
    }
}
