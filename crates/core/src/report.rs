//! Run results: everything the harness needs to regenerate the paper's
//! tables and figures.

use std::fmt;

use cvm_net::NetStats;
use cvm_sim::{SimDuration, VirtualTime};

use crate::stats::DsmStats;
use crate::trace::Trace;

/// Per-node execution-time breakdown — the four categories of Figure 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeBreakdown {
    /// Computation + local consistency + thread switches.
    pub user: SimDuration,
    /// Non-overlapped barrier wait.
    pub barrier: SimDuration,
    /// Non-overlapped fault (remote data) wait.
    pub fault: SimDuration,
    /// Non-overlapped lock wait.
    pub lock: SimDuration,
    /// The node's final clock.
    pub clock: VirtualTime,
}

impl NodeBreakdown {
    /// Sum of all categories (≈ the node's wall time).
    pub fn total(&self) -> SimDuration {
        self.user + self.barrier + self.fault + self.lock
    }
}

/// Cache/TLB miss totals across all nodes (Figure 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemMisses {
    /// Data-cache misses.
    pub dcache: u64,
    /// Data-TLB misses.
    pub dtlb: u64,
    /// Instruction-TLB misses.
    pub itlb: u64,
}

/// The complete result of one CVM run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall virtual time of the run (max node clock), measured from
    /// `startup_done`.
    pub total_time: VirtualTime,
    /// DSM-level statistics (Tables 3 and 5).
    pub stats: DsmStats,
    /// Traffic statistics (Table 2).
    pub net: NetStats,
    /// Per-node breakdown (Figure 1).
    pub nodes: Vec<NodeBreakdown>,
    /// Memory-system misses, if the simulator was enabled (Figure 2).
    pub mem: MemMisses,
    /// Protocol event trace, if tracing was enabled.
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_time.as_ms_f64()
    }

    /// Average per-node share of one Figure 1 category, as a fraction of
    /// total run time.
    pub fn fraction(&self, pick: impl Fn(&NodeBreakdown) -> SimDuration) -> f64 {
        if self.nodes.is_empty() || self.total_time == VirtualTime::ZERO {
            return 0.0;
        }
        let sum: f64 = self.nodes.iter().map(|n| pick(n).as_us_f64()).sum();
        sum / (self.nodes.len() as f64) / self.total_time.as_us_f64()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run: {:.3} ms", self.total_ms())?;
        writeln!(f, "{}", self.stats)?;
        writeln!(f, "{}", self.net)?;
        write!(
            f,
            "mem misses: dcache {} dtlb {} itlb {}",
            self.mem.dcache, self.mem.dtlb, self.mem.itlb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums() {
        let b = NodeBreakdown {
            user: SimDuration::from_us(10),
            barrier: SimDuration::from_us(5),
            fault: SimDuration::from_us(3),
            lock: SimDuration::from_us(2),
            clock: VirtualTime::from_us(20),
        };
        assert_eq!(b.total(), SimDuration::from_us(20));
    }

    #[test]
    fn fractions_are_normalized() {
        let report = RunReport {
            total_time: VirtualTime::from_us(100),
            stats: DsmStats::default(),
            net: NetStats::new(),
            nodes: vec![
                NodeBreakdown {
                    user: SimDuration::from_us(60),
                    barrier: SimDuration::from_us(40),
                    ..Default::default()
                },
                NodeBreakdown {
                    user: SimDuration::from_us(100),
                    ..Default::default()
                },
            ],
            mem: MemMisses::default(),
            trace: None,
        };
        assert!((report.fraction(|n| n.user) - 0.8).abs() < 1e-9);
        assert!((report.fraction(|n| n.barrier) - 0.2).abs() < 1e-9);
    }
}
