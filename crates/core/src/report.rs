//! Run results: everything the harness needs to regenerate the paper's
//! tables and figures.

use std::fmt;

use cvm_net::{DeliveryFailure, LossStats, NetStats};
use cvm_sim::json::JsonValue;
use cvm_sim::{SimDuration, StepLog, VirtualTime};

use crate::attr::ResourceAttr;
use crate::hist::DsmHistograms;
use crate::oracle::Finding;
use crate::span::SpanForest;
use crate::stats::DsmStats;
use crate::trace::Trace;

/// Per-node execution-time breakdown — the four categories of Figure 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeBreakdown {
    /// Computation + local consistency + thread switches.
    pub user: SimDuration,
    /// Non-overlapped barrier wait.
    pub barrier: SimDuration,
    /// Non-overlapped fault (remote data) wait.
    pub fault: SimDuration,
    /// Non-overlapped lock wait.
    pub lock: SimDuration,
    /// Open-loop idle: every runnable thread asleep on the arrival clock
    /// (`sleep_until`), i.e. the node is under-offered. Zero for the
    /// closed-loop batch kernels.
    pub idle: SimDuration,
    /// The node's final clock.
    pub clock: VirtualTime,
}

impl NodeBreakdown {
    /// Sum of all categories (≈ the node's wall time).
    pub fn total(&self) -> SimDuration {
        self.user + self.barrier + self.fault + self.lock + self.idle
    }
}

/// Peak-memory accounting: high-water marks of the three stores whose
/// footprint grows with scale — twin pages, cached diffs and messages
/// parked in the network (retransmission copies, reorder holds). Peaks
/// are measured over the *measured* region (startup reset re-arms them)
/// and are a property of the simulated execution: byte-identical at any
/// shard count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemPeaks {
    /// Per node: peak live twin bytes.
    pub node_twin_peak: Vec<u64>,
    /// Per node: peak diff-cache bytes (modelled wire size).
    pub node_cache_peak: Vec<u64>,
    /// Per node: peak parked message bytes (sender retransmission copies
    /// and receiver reorder holds).
    pub node_parked_peak: Vec<u64>,
    /// Whole-run peak of the cluster-wide twin total (≤ the sum of the
    /// per-node peaks, which need not coincide in time).
    pub twin_global_peak: u64,
    /// Whole-run peak of the cluster-wide diff-cache total.
    pub cache_global_peak: u64,
    /// Whole-run peak of the network-wide parked total.
    pub parked_global_peak: u64,
}

impl MemPeaks {
    /// Largest single-node peak across all three stores — the number that
    /// must fit in one node's memory budget.
    pub fn worst_node_bytes(&self) -> u64 {
        let worst = |v: &[u64]| v.iter().copied().max().unwrap_or(0);
        worst(&self.node_twin_peak)
            .max(worst(&self.node_cache_peak))
            .max(worst(&self.node_parked_peak))
    }
}

/// Cache/TLB miss totals across all nodes (Figure 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemMisses {
    /// Data-cache misses.
    pub dcache: u64,
    /// Data-TLB misses.
    pub dtlb: u64,
    /// Instruction-TLB misses.
    pub itlb: u64,
}

/// The complete result of one CVM run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall virtual time of the run (max node clock), measured from
    /// `startup_done`.
    pub total_time: VirtualTime,
    /// DSM-level statistics (Tables 3 and 5).
    pub stats: DsmStats,
    /// Traffic statistics (Table 2).
    pub net: NetStats,
    /// Reliability-layer counters (all zero unless loss injection was
    /// configured; then `retransmissions > 0` is the proof the run really
    /// exercised the recovery path).
    pub loss: LossStats,
    /// Messages the reliability layer abandoned after retry exhaustion
    /// (graceful degradation instead of a panic). Empty in a healthy run.
    pub failures: Vec<DeliveryFailure>,
    /// Threads still blocked when the run ended because traffic they
    /// depended on was abandoned. Non-zero only when `failures` is
    /// non-empty.
    pub unfinished_threads: usize,
    /// Per-node breakdown (Figure 1).
    pub nodes: Vec<NodeBreakdown>,
    /// Memory-system misses, if the simulator was enabled (Figure 2).
    pub mem: MemMisses,
    /// Peak-memory high-water marks (always collected).
    pub mem_peaks: MemPeaks,
    /// Bursts the window planner pre-executed. Host-side observability
    /// only: the count varies with `--shards`, so it is deliberately
    /// excluded from the JSON document and the Display rendering, both of
    /// which are compared byte-for-byte across shard counts.
    pub planned_bursts: u64,
    /// Virtual time consumed by every application burst, in ns. Input to
    /// the modelled burst speedup (`cvm bench --scale`); excluded from
    /// the JSON/Display surfaces alongside `planned_bursts`.
    pub burst_total_ns: u64,
    /// Burst time the window planner overlapped: per window,
    /// `sum(bursts) - max(bursts)` — what a host with one core per shard
    /// keeps off the critical path. Varies with `--shards`; excluded from
    /// the JSON/Display surfaces alongside `planned_bursts`.
    pub overlap_saved_ns: u64,
    /// Latency and size distributions (always collected).
    pub hist: DsmHistograms,
    /// Per-page and per-lock attribution (always collected).
    pub attr: ResourceAttr,
    /// Protocol event trace, if tracing was enabled.
    pub trace: Option<Trace>,
    /// Causal span forest, if span recording was enabled
    /// ([`CvmConfig::spans`](crate::CvmConfig)).
    pub spans: Option<SpanForest>,
    /// Invariant violations recorded by the online oracle (empty unless
    /// `verify` was set — and then hopefully still empty).
    pub findings: Vec<Finding>,
    /// Scheduler pick decisions perturbed by the exploration schedule
    /// (0 when no exploration was configured).
    pub explore_decisions: u64,
    /// Scheduling-point log (enabled sets, chosen indices, burst
    /// footprints), recorded when
    /// [`CvmConfig::record_steps`](crate::CvmConfig) was set.
    pub steps: Option<StepLog>,
    /// FNV-1a fingerprint of the terminal protocol-visible state (node
    /// memories, page states, vector times); 0 unless `record_steps`.
    pub state_hash: u64,
}

impl RunReport {
    /// Total time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_time.as_ms_f64()
    }

    /// True if the run completed degraded: some traffic was abandoned at
    /// retry exhaustion (an unresponsive peer), so results describe a
    /// partially-finished computation rather than a clean run.
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty() || self.unfinished_threads > 0
    }

    /// Sums the per-node breakdowns into one system-wide breakdown (the
    /// sweep's aggregation primitive; `clock` carries the max node clock).
    pub fn breakdown_sum(&self) -> NodeBreakdown {
        let mut sum = NodeBreakdown::default();
        for n in &self.nodes {
            sum.user += n.user;
            sum.barrier += n.barrier;
            sum.fault += n.fault;
            sum.lock += n.lock;
            sum.idle += n.idle;
            sum.clock = sum.clock.max(n.clock);
        }
        sum
    }

    /// Average per-node share of one Figure 1 category, as a fraction of
    /// total run time.
    pub fn fraction(&self, pick: impl Fn(&NodeBreakdown) -> SimDuration) -> f64 {
        if self.nodes.is_empty() || self.total_time == VirtualTime::ZERO {
            return 0.0;
        }
        let sum: f64 = self.nodes.iter().map(|n| pick(n).as_us_f64()).sum();
        sum / (self.nodes.len() as f64) / self.total_time.as_us_f64()
    }

    /// The whole report as one JSON document, with the top `top_n`
    /// entries of each hot-resource table. Trace *entries* are not
    /// embedded (use [`chrome_trace`](crate::export::chrome_trace) for
    /// the timeline); only the trace's bookkeeping totals appear.
    pub fn to_json(&self, top_n: usize) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("schema", "cvm-run-report");
        obj.set("version", 1u64);
        obj.set("total_ns", self.total_time.as_ns());
        obj.set("total_ms", self.total_ms());
        obj.set("stats", self.stats.to_json());
        obj.set("net", self.net.to_json());
        let mut loss = JsonValue::object();
        loss.set("sends", self.loss.sends);
        loss.set("delivered", self.loss.delivered);
        loss.set("gave_up", self.loss.gave_up);
        loss.set("dropped", self.loss.dropped);
        loss.set("ack_drops", self.loss.ack_drops);
        loss.set("corrupt_drops", self.loss.corrupt_drops);
        loss.set("partition_drops", self.loss.partition_drops);
        loss.set("duplicates_injected", self.loss.duplicates_injected);
        loss.set("reorders_injected", self.loss.reorders_injected);
        loss.set("retransmissions", self.loss.retransmissions);
        loss.set("duplicates_suppressed", self.loss.duplicates_suppressed);
        loss.set("acks_sent", self.loss.acks_sent);
        obj.set("loss", loss);
        if self.degraded() {
            let mut degraded = JsonValue::object();
            degraded.set("unfinished_threads", self.unfinished_threads);
            let mut rows = JsonValue::array();
            for fail in &self.failures {
                let mut row = JsonValue::object();
                row.set("src", fail.src.0);
                row.set("dst", fail.dst.0);
                row.set("seq", fail.seq);
                row.set("kind", format!("{:?}", fail.kind));
                row.set("span", fail.span);
                rows.push(row);
            }
            degraded.set("failures", rows);
            obj.set("degraded", degraded);
        }
        obj.set("hist", self.hist.to_json());
        obj.set("attr", self.attr.to_json(top_n));
        let mut nodes = JsonValue::array();
        for (i, n) in self.nodes.iter().enumerate() {
            let mut row = JsonValue::object();
            row.set("node", i);
            row.set("user_ns", n.user.as_ns());
            row.set("barrier_ns", n.barrier.as_ns());
            row.set("fault_ns", n.fault.as_ns());
            row.set("lock_ns", n.lock.as_ns());
            row.set("idle_ns", n.idle.as_ns());
            row.set("clock_ns", n.clock.as_ns());
            nodes.push(row);
        }
        obj.set("nodes", nodes);
        let mut mem = JsonValue::object();
        mem.set("dcache", self.mem.dcache);
        mem.set("dtlb", self.mem.dtlb);
        mem.set("itlb", self.mem.itlb);
        obj.set("mem", mem);
        let mut peaks = JsonValue::object();
        let per_node = |v: &[u64]| {
            let mut arr = JsonValue::array();
            for &b in v {
                arr.push(b);
            }
            arr
        };
        peaks.set("node_twin_peak", per_node(&self.mem_peaks.node_twin_peak));
        peaks.set("node_cache_peak", per_node(&self.mem_peaks.node_cache_peak));
        peaks.set(
            "node_parked_peak",
            per_node(&self.mem_peaks.node_parked_peak),
        );
        peaks.set("twin_global_peak", self.mem_peaks.twin_global_peak);
        peaks.set("cache_global_peak", self.mem_peaks.cache_global_peak);
        peaks.set("parked_global_peak", self.mem_peaks.parked_global_peak);
        obj.set("mem_peaks", peaks);
        if let Some(trace) = &self.trace {
            let mut t = JsonValue::object();
            t.set("recorded", trace.len());
            t.set("overflow", trace.overflow());
            t.set("events_total", trace.events_total());
            obj.set("trace", t);
        }
        if let Some(spans) = &self.spans {
            obj.set("spans", spans.to_json(self.total_time));
        }
        let mut findings = JsonValue::array();
        for fd in &self.findings {
            let mut row = JsonValue::object();
            row.set("invariant", format!("{}", fd.invariant));
            if let Some(n) = fd.node {
                row.set("node", n);
            }
            row.set("at_ns", fd.at.as_ns());
            row.set("detail", fd.detail.clone());
            findings.push(row);
        }
        obj.set("findings", findings);
        obj.set("explore_decisions", self.explore_decisions);
        if let Some(steps) = &self.steps {
            obj.set("steps", steps.to_json());
            obj.set("state_hash", format!("{:016x}", self.state_hash));
        }
        obj
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run: {:.3} ms", self.total_ms())?;
        writeln!(f, "{}", self.stats)?;
        writeln!(f, "{}", self.net)?;
        if self.loss != LossStats::default() {
            writeln!(
                f,
                "loss: dropped {} retransmissions {} dup-suppressed {} acks {}",
                self.loss.dropped,
                self.loss.retransmissions,
                self.loss.duplicates_suppressed,
                self.loss.acks_sent
            )?;
        }
        if self.degraded() {
            writeln!(
                f,
                "DEGRADED: {} message(s) abandoned at retry exhaustion, \
                 {} thread(s) unfinished",
                self.failures.len(),
                self.unfinished_threads
            )?;
        }
        if self.hist.rows().iter().any(|(_, _, h)| h.count() > 0) {
            write!(f, "{}", self.hist)?;
        }
        let attr_text = self.attr.render(5);
        if !attr_text.is_empty() {
            write!(f, "{attr_text}")?;
        }
        writeln!(
            f,
            "mem misses: dcache {} dtlb {} itlb {}",
            self.mem.dcache, self.mem.dtlb, self.mem.itlb
        )?;
        write!(
            f,
            "mem peaks: twins {} B, diff cache {} B, parked {} B \
             (worst node {} B)",
            self.mem_peaks.twin_global_peak,
            self.mem_peaks.cache_global_peak,
            self.mem_peaks.parked_global_peak,
            self.mem_peaks.worst_node_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums() {
        let b = NodeBreakdown {
            user: SimDuration::from_us(10),
            barrier: SimDuration::from_us(5),
            fault: SimDuration::from_us(3),
            lock: SimDuration::from_us(2),
            idle: SimDuration::from_us(1),
            clock: VirtualTime::from_us(21),
        };
        assert_eq!(b.total(), SimDuration::from_us(21));
    }

    #[test]
    fn fractions_are_normalized() {
        let report = RunReport {
            total_time: VirtualTime::from_us(100),
            stats: DsmStats::default(),
            net: NetStats::new(),
            loss: LossStats::default(),
            failures: Vec::new(),
            unfinished_threads: 0,
            nodes: vec![
                NodeBreakdown {
                    user: SimDuration::from_us(60),
                    barrier: SimDuration::from_us(40),
                    ..Default::default()
                },
                NodeBreakdown {
                    user: SimDuration::from_us(100),
                    ..Default::default()
                },
            ],
            mem: MemMisses::default(),
            mem_peaks: MemPeaks::default(),
            planned_bursts: 0,
            burst_total_ns: 0,
            overlap_saved_ns: 0,
            hist: DsmHistograms::default(),
            attr: ResourceAttr::default(),
            trace: None,
            spans: None,
            findings: Vec::new(),
            explore_decisions: 0,
            steps: None,
            state_hash: 0,
        };
        assert!((report.fraction(|n| n.user) - 0.8).abs() < 1e-9);
        assert!((report.fraction(|n| n.barrier) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sum_aggregates_nodes() {
        let report = RunReport {
            total_time: VirtualTime::from_us(100),
            stats: DsmStats::default(),
            net: NetStats::new(),
            loss: LossStats::default(),
            failures: Vec::new(),
            unfinished_threads: 0,
            nodes: vec![
                NodeBreakdown {
                    user: SimDuration::from_us(60),
                    fault: SimDuration::from_us(5),
                    clock: VirtualTime::from_us(80),
                    ..Default::default()
                },
                NodeBreakdown {
                    user: SimDuration::from_us(100),
                    clock: VirtualTime::from_us(100),
                    ..Default::default()
                },
            ],
            mem: MemMisses::default(),
            mem_peaks: MemPeaks::default(),
            planned_bursts: 0,
            burst_total_ns: 0,
            overlap_saved_ns: 0,
            hist: DsmHistograms::default(),
            attr: ResourceAttr::default(),
            trace: None,
            spans: None,
            findings: Vec::new(),
            explore_decisions: 0,
            steps: None,
            state_hash: 0,
        };
        let sum = report.breakdown_sum();
        assert_eq!(sum.user, SimDuration::from_us(160));
        assert_eq!(sum.fault, SimDuration::from_us(5));
        assert_eq!(sum.clock, VirtualTime::from_us(100), "clock is the max");
    }

    #[test]
    fn json_has_all_sections() {
        let mut report = RunReport {
            total_time: VirtualTime::from_us(100),
            stats: DsmStats::default(),
            net: NetStats::new(),
            loss: LossStats::default(),
            failures: Vec::new(),
            unfinished_threads: 0,
            nodes: vec![NodeBreakdown::default()],
            mem: MemMisses::default(),
            mem_peaks: MemPeaks::default(),
            planned_bursts: 0,
            burst_total_ns: 0,
            overlap_saved_ns: 0,
            hist: DsmHistograms::default(),
            attr: ResourceAttr::default(),
            trace: Some(Trace::new(16)),
            spans: None,
            findings: Vec::new(),
            explore_decisions: 0,
            steps: None,
            state_hash: 0,
        };
        report.hist.fault_fetch_ns.record(900);
        report.attr.page_mut(4).faults = 1;
        let j = report.to_json(8);
        assert_eq!(j.get("schema").unwrap().as_str(), Some("cvm-run-report"));
        assert_eq!(j.get("total_ns").unwrap().as_u64(), Some(100_000));
        for key in [
            "stats",
            "net",
            "loss",
            "hist",
            "attr",
            "nodes",
            "mem",
            "trace",
            "findings",
            "explore_decisions",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("nodes").unwrap().as_array().unwrap().len(), 1);
        let hot = j.get("attr").unwrap().get("hot_pages").unwrap();
        assert_eq!(
            hot.as_array().unwrap()[0].get("page").unwrap().as_u64(),
            Some(4)
        );
        // The document survives a print/parse round trip.
        let text = j.to_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), j);
    }
}
