//! Protocol event tracing.
//!
//! CVM exists to experiment with protocols, and experiments need to see
//! what the protocol did. When enabled (set a nonzero
//! [`CvmConfig::trace_capacity`](crate::CvmConfig)), the driver records a
//! timestamped entry for every significant protocol action — faults,
//! fetches, twin/diff life cycle, interval closes, invalidations, lock
//! hand-offs, barrier episodes, eager pushes, thread switches — up to the
//! configured capacity (then stops recording and counts the overflow).
//! The trace rides back on the [`RunReport`](crate::RunReport).
//!
//! # Example
//!
//! ```
//! use cvm_dsm::{CvmBuilder, CvmConfig};
//!
//! let mut cfg = CvmConfig::small(2, 1);
//! cfg.trace_capacity = 10_000;
//! let mut b = CvmBuilder::new(cfg);
//! let v = b.alloc::<u64>(8);
//! let report = b.run(move |ctx| {
//!     if ctx.global_id() == 0 {
//!         v.write(ctx, 0, 1);
//!     }
//!     ctx.startup_done();
//!     if ctx.node() == 1 {
//!         v.write(ctx, 0, 2);
//!     }
//!     ctx.barrier();
//!     let _ = v.read(ctx, 0);
//!     ctx.barrier();
//! });
//! let trace = report.trace.expect("tracing was enabled");
//! assert!(trace.iter().any(|e| matches!(
//!     e.event,
//!     cvm_dsm::trace::TraceEvent::BarrierReleased { .. }
//! )));
//! ```

use std::fmt;

use cvm_sim::VirtualTime;

use crate::page::PageId;

/// One recorded protocol action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread took a remote page fault.
    Fault {
        /// Faulting node.
        node: usize,
        /// Faulting page.
        page: PageId,
        /// Write access?
        write: bool,
    },
    /// All replies for a fetch arrived and were applied.
    FetchComplete {
        /// Fetching node.
        node: usize,
        /// Page completed.
        page: PageId,
        /// Diffs applied.
        diffs: usize,
    },
    /// A diff was extracted from a twin.
    DiffCreated {
        /// Writer node.
        node: usize,
        /// Page diffed.
        page: PageId,
        /// Modified bytes in the diff.
        bytes: usize,
    },
    /// An interval closed, emitting write notices.
    IntervalClosed {
        /// Closing node.
        node: usize,
        /// New interval index.
        interval: u32,
        /// Pages dirtied in the interval.
        pages: usize,
    },
    /// A write notice became visible to a node (created locally at an
    /// interval close, or received via a lock grant / barrier release).
    /// Recorded only under `verify`; the offline race detector uses it to
    /// replay notice coverage.
    NoticeCreated {
        /// Node the notice is now known at.
        node: usize,
        /// Writer that produced the interval.
        writer: usize,
        /// The writer's interval index.
        interval: u32,
        /// Page the notice covers.
        page: PageId,
    },
    /// A diff application advanced a page's applied-interval watermark
    /// (fetch reply or eager push). Recorded only under `verify`; the
    /// watermark can run ahead of the receiver's vector time, which the
    /// race detector must mirror to avoid false lost-update reports.
    DiffApplied {
        /// Node applying the diff.
        node: usize,
        /// Page patched.
        page: PageId,
        /// Writer whose modifications were applied.
        writer: usize,
        /// Writer intervals now folded into the copy, `..=upto`.
        upto: u32,
    },
    /// The lock token moved between nodes (granted by the previous owner
    /// or forwarded by the manager). Recorded only under `verify`; the
    /// replay uses it to audit single-token ownership.
    LockTransfer {
        /// Lock index.
        lock: usize,
        /// Node releasing the token.
        from: usize,
        /// Node receiving the token.
        to: usize,
    },
    /// A write notice invalidated a resident copy.
    Invalidated {
        /// Node losing the copy.
        node: usize,
        /// Page invalidated.
        page: PageId,
        /// The writer whose notice caused it.
        writer: usize,
    },
    /// A remote lock request left the node.
    LockRequested {
        /// Requesting node.
        node: usize,
        /// Lock index.
        lock: usize,
    },
    /// A lock grant arrived (token now owned here).
    LockGranted {
        /// Receiving node.
        node: usize,
        /// Lock index.
        lock: usize,
    },
    /// A release handed the lock to a co-located waiter.
    LockLocalHandoff {
        /// Node of both threads.
        node: usize,
        /// Lock index.
        lock: usize,
    },
    /// A node's (aggregated) barrier arrival.
    BarrierArrived {
        /// Arriving node.
        node: usize,
        /// Episode number.
        epoch: u32,
    },
    /// The master released a barrier episode.
    BarrierReleased {
        /// Episode number.
        epoch: u32,
        /// Write notices fanned out.
        notices: usize,
    },
    /// The eager protocol pushed a diff.
    UpdatePushed {
        /// Writer node.
        node: usize,
        /// Page pushed.
        page: PageId,
        /// Receiving node.
        target: usize,
    },
    /// The scheduler switched between two threads.
    ThreadSwitch {
        /// Node switching.
        node: usize,
        /// Outgoing thread (global id).
        from: usize,
        /// Incoming thread (global id).
        to: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Fault { node, page, write } => {
                write!(
                    f,
                    "n{node} fault {page} ({})",
                    if *write { "w" } else { "r" }
                )
            }
            TraceEvent::FetchComplete { node, page, diffs } => {
                write!(f, "n{node} fetched {page} ({diffs} diffs)")
            }
            TraceEvent::DiffCreated { node, page, bytes } => {
                write!(f, "n{node} diffed {page} ({bytes} B)")
            }
            TraceEvent::IntervalClosed {
                node,
                interval,
                pages,
            } => write!(f, "n{node} closed interval {interval} ({pages} pages)"),
            TraceEvent::NoticeCreated {
                node,
                writer,
                interval,
                page,
            } => write!(f, "n{node} learned notice n{writer}.{interval} {page}"),
            TraceEvent::DiffApplied {
                node,
                page,
                writer,
                upto,
            } => write!(f, "n{node} applied diff {page} (n{writer} upto {upto})"),
            TraceEvent::LockTransfer { lock, from, to } => {
                write!(f, "lock {lock} token n{from} -> n{to}")
            }
            TraceEvent::Invalidated { node, page, writer } => {
                write!(f, "n{node} invalidated {page} (writer n{writer})")
            }
            TraceEvent::LockRequested { node, lock } => {
                write!(f, "n{node} requested lock {lock}")
            }
            TraceEvent::LockGranted { node, lock } => write!(f, "n{node} granted lock {lock}"),
            TraceEvent::LockLocalHandoff { node, lock } => {
                write!(f, "n{node} local hand-off lock {lock}")
            }
            TraceEvent::BarrierArrived { node, epoch } => {
                write!(f, "n{node} arrived barrier {epoch}")
            }
            TraceEvent::BarrierReleased { epoch, notices } => {
                write!(f, "barrier {epoch} released ({notices} notices)")
            }
            TraceEvent::UpdatePushed { node, page, target } => {
                write!(f, "n{node} pushed {page} to n{target}")
            }
            TraceEvent::ThreadSwitch { node, from, to } => {
                write!(f, "n{node} switch t{from} -> t{to}")
            }
        }
    }
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the action.
    pub at: VirtualTime,
    /// What happened.
    pub event: TraceEvent,
}

/// A bounded recording of protocol events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    overflow: u64,
}

impl Trace {
    /// Creates a trace bounded at `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> Self {
        Trace {
            entries: Vec::new(),
            capacity,
            overflow: 0,
        }
    }

    /// True if events are being recorded.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (drops and counts once full).
    pub fn record(&mut self, at: VirtualTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(TraceEntry { at, event });
        } else {
            self.overflow += 1;
        }
    }

    /// Entries recorded, in order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events dropped after the capacity filled.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total events the run produced: recorded plus dropped. Capacity
    /// changes the split, never this total.
    pub fn events_total(&self) -> u64 {
        self.entries.len() as u64 + self.overflow
    }

    /// Renders the first `limit` entries as text (one per line).
    pub fn render(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in self.entries.iter().take(limit) {
            let _ = writeln!(out, "{:>12.3}us  {}", e.at.as_us_f64(), e.event);
        }
        if self.entries.len() > limit {
            let _ = writeln!(out, "... {} more entries", self.entries.len() - limit);
        }
        if self.overflow > 0 {
            let _ = writeln!(out, "... {} events dropped (capacity)", self.overflow);
        }
        out
    }

    /// Clears all entries (used at `startup_done`).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.overflow = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.record(
                VirtualTime::from_us(i),
                TraceEvent::LockRequested { node: 0, lock: 1 },
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.overflow(), 3);
        assert_eq!(t.events_total(), 5);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        assert!(!t.enabled());
        t.record(
            VirtualTime::ZERO,
            TraceEvent::BarrierReleased {
                epoch: 1,
                notices: 0,
            },
        );
        assert!(t.is_empty());
        assert_eq!(t.overflow(), 0);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new(10);
        t.record(
            VirtualTime::from_us(5),
            TraceEvent::Fault {
                node: 2,
                page: PageId(7),
                write: true,
            },
        );
        let text = t.render(10);
        assert!(text.contains("n2 fault p7 (w)"));
    }

    #[test]
    fn every_event_displays() {
        let events = [
            TraceEvent::Fault {
                node: 0,
                page: PageId(1),
                write: false,
            },
            TraceEvent::FetchComplete {
                node: 0,
                page: PageId(1),
                diffs: 2,
            },
            TraceEvent::DiffCreated {
                node: 0,
                page: PageId(1),
                bytes: 64,
            },
            TraceEvent::IntervalClosed {
                node: 0,
                interval: 3,
                pages: 2,
            },
            TraceEvent::Invalidated {
                node: 1,
                page: PageId(1),
                writer: 0,
            },
            TraceEvent::LockRequested { node: 0, lock: 5 },
            TraceEvent::LockGranted { node: 0, lock: 5 },
            TraceEvent::LockLocalHandoff { node: 0, lock: 5 },
            TraceEvent::BarrierArrived { node: 1, epoch: 0 },
            TraceEvent::BarrierReleased {
                epoch: 0,
                notices: 4,
            },
            TraceEvent::UpdatePushed {
                node: 0,
                page: PageId(1),
                target: 1,
            },
            TraceEvent::ThreadSwitch {
                node: 0,
                from: 1,
                to: 2,
            },
            TraceEvent::NoticeCreated {
                node: 1,
                writer: 0,
                interval: 2,
                page: PageId(1),
            },
            TraceEvent::DiffApplied {
                node: 1,
                page: PageId(1),
                writer: 0,
                upto: 2,
            },
            TraceEvent::LockTransfer {
                lock: 5,
                from: 0,
                to: 1,
            },
        ];
        for e in events {
            assert!(!format!("{e}").is_empty());
        }
    }
}
