//! Coherence protocol selection.
//!
//! CVM "was created specifically as a platform for protocol
//! experimentation": new protocols derive from the base `Page`/`Protocol`
//! classes and override only what differs. This module captures the same
//! idea as data: [`ProtocolKind`] selects among implemented protocols; the driver
//! consults it at each hook point (interval close, fault, copy arrival).
//! The mechanism — twins, diffs, intervals, notices — is shared; the
//! policies differ.
//!
//! Implemented protocols:
//!
//! * [`ProtocolKind::LazyMultiWriter`] — the paper's protocol: lazy
//!   release consistency, invalidate-based. Modifications travel as write
//!   notices at synchronization; data moves only when a faulting reader
//!   pulls diffs.
//! * [`ProtocolKind::EagerUpdate`] — a Munin-style eager update protocol:
//!   at every interval close (release, barrier, lock grant) the writer
//!   *pushes* its diffs to every node holding a copy. Readers rarely
//!   fault, but bandwidth scales with the copyset, which is why lazy
//!   invalidate wins for most applications — the comparison that motivated
//!   CVM's protocol work. An adaptive *copyset pruning* rule (drop a node
//!   after [`PRUNE_AFTER_UNUSED`] consecutive unused updates, as in Munin)
//!   keeps the eager protocol from degenerating to broadcast.
//! * [`ProtocolKind::HomeLazy`] — home-based LRC: every page has a static
//!   home node; writers flush their diffs to the home at interval close,
//!   and a faulting reader fetches the whole up-to-date page from the home
//!   in a single round trip. Fewer messages per fault than the homeless
//!   protocol (one request/reply pair regardless of the writer count), but
//!   more data volume (full pages instead of diffs) — the classic
//!   trade-off.
//!
//! The driver consumes the selection through the `Coherence` trait (see
//! `driver::coherence`): each kind maps to one trait impl; no other layer
//! branches on the kind.

use std::fmt;

/// Which coherence protocol the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolKind {
    /// Lazy release consistency with multiple writers (the paper's CVM
    /// protocol).
    #[default]
    LazyMultiWriter,
    /// Eager update: diffs pushed to the copyset at interval close.
    EagerUpdate,
    /// Home-based LRC: diffs flushed to a per-page home at interval close;
    /// faulting readers fetch the whole page from the home.
    HomeLazy,
}

impl ProtocolKind {
    /// Every implemented protocol, in sweep/report order. The position in
    /// this array is the protocol's stable index for seed derivation.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::LazyMultiWriter,
        ProtocolKind::EagerUpdate,
        ProtocolKind::HomeLazy,
    ];

    /// Protocol name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::LazyMultiWriter => "lazy-multi-writer",
            ProtocolKind::EagerUpdate => "eager-update",
            ProtocolKind::HomeLazy => "home-lazy",
        }
    }

    /// Short CLI spelling (`--protocol` axis values).
    pub fn slug(self) -> &'static str {
        match self {
            ProtocolKind::LazyMultiWriter => "lazy-mw",
            ProtocolKind::EagerUpdate => "eager-update",
            ProtocolKind::HomeLazy => "home-lazy",
        }
    }

    /// Parses a CLI spelling (several aliases per protocol).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "lazy-mw" | "lazy" | "lazy-multi-writer" => ProtocolKind::LazyMultiWriter,
            "eager-update" | "eager" => ProtocolKind::EagerUpdate,
            "home-lazy" | "home" | "home-based" => ProtocolKind::HomeLazy,
            _ => return None,
        })
    }

    /// True if writers push diffs at interval close.
    pub fn pushes_updates(self) -> bool {
        matches!(self, ProtocolKind::EagerUpdate)
    }

    /// True if write notices invalidate remote copies (lazy pull).
    pub fn invalidates(self) -> bool {
        matches!(self, ProtocolKind::LazyMultiWriter | ProtocolKind::HomeLazy)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// After this many consecutive pushed updates that the receiving node
/// never read, the receiver drops out of the page's copyset (Munin's
/// update timeout, counted in updates rather than time).
pub const PRUNE_AFTER_UNUSED: u32 = 3;

/// Per-(page, node) copyset bookkeeping for the eager protocol.
#[derive(Debug, Clone, Default)]
pub struct CopysetEntry {
    /// Nodes currently holding a pushable copy.
    pub members: Vec<usize>,
    /// Per member: consecutive pushes not followed by a local access.
    pub unused_pushes: Vec<u32>,
}

impl CopysetEntry {
    /// Creates a copyset containing every node (the state after the
    /// startup snapshot distributes the initial image).
    pub fn full(nodes: usize) -> Self {
        CopysetEntry {
            members: (0..nodes).collect(),
            unused_pushes: vec![0; nodes],
        }
    }

    /// Adds a node (idempotent), resetting its unused counter.
    pub fn add(&mut self, node: usize) {
        if let Some(i) = self.members.iter().position(|&m| m == node) {
            self.unused_pushes[i] = 0;
        } else {
            self.members.push(node);
            self.unused_pushes.push(0);
        }
    }

    /// Removes a node (idempotent).
    pub fn remove(&mut self, node: usize) {
        if let Some(i) = self.members.iter().position(|&m| m == node) {
            self.members.swap_remove(i);
            self.unused_pushes.swap_remove(i);
        }
    }

    /// True if the node is a member.
    pub fn contains(&self, node: usize) -> bool {
        self.members.contains(&node)
    }

    /// Records a push to `node`; returns `true` if the node should be
    /// pruned (too many consecutive unused updates).
    pub fn record_push(&mut self, node: usize) -> bool {
        if let Some(i) = self.members.iter().position(|&m| m == node) {
            self.unused_pushes[i] += 1;
            self.unused_pushes[i] > PRUNE_AFTER_UNUSED
        } else {
            false
        }
    }

    /// Records a local access by `node` (resets its unused counter).
    pub fn record_use(&mut self, node: usize) {
        if let Some(i) = self.members.iter().position(|&m| m == node) {
            self.unused_pushes[i] = 0;
        }
    }

    /// Members other than `writer`, in deterministic (sorted) order.
    pub fn push_targets(&self, writer: usize) -> Vec<usize> {
        let mut t: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != writer)
            .collect();
        t.sort_unstable();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_copyset_contains_everyone() {
        let c = CopysetEntry::full(4);
        for n in 0..4 {
            assert!(c.contains(n));
        }
        assert_eq!(c.push_targets(2), vec![0, 1, 3]);
    }

    #[test]
    fn pruning_after_unused_pushes() {
        let mut c = CopysetEntry::full(2);
        for _ in 0..PRUNE_AFTER_UNUSED {
            assert!(!c.record_push(1), "within the tolerance");
        }
        assert!(c.record_push(1), "exceeds the tolerance");
        c.remove(1);
        assert!(!c.contains(1));
    }

    #[test]
    fn use_resets_the_counter() {
        let mut c = CopysetEntry::full(2);
        for _ in 0..PRUNE_AFTER_UNUSED {
            c.record_push(1);
        }
        c.record_use(1);
        assert!(!c.record_push(1), "counter was reset by the access");
    }

    #[test]
    fn add_is_idempotent() {
        let mut c = CopysetEntry::default();
        c.add(3);
        c.add(3);
        assert_eq!(c.members.len(), 1);
    }

    #[test]
    fn kind_properties() {
        assert!(ProtocolKind::LazyMultiWriter.invalidates());
        assert!(!ProtocolKind::LazyMultiWriter.pushes_updates());
        assert!(ProtocolKind::EagerUpdate.pushes_updates());
        assert!(!ProtocolKind::EagerUpdate.invalidates());
        assert!(ProtocolKind::HomeLazy.invalidates());
        assert!(!ProtocolKind::HomeLazy.pushes_updates());
        assert_eq!(ProtocolKind::default(), ProtocolKind::LazyMultiWriter);
        assert_eq!(ProtocolKind::ALL[0], ProtocolKind::default());
    }

    #[test]
    fn parse_round_trips_slugs() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.slug()), Some(kind));
        }
        assert_eq!(
            ProtocolKind::parse("home"),
            Some(ProtocolKind::HomeLazy),
            "aliases accepted"
        );
        assert_eq!(ProtocolKind::parse("bogus"), None);
    }
}
