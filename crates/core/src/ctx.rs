//! The application thread context — the DSM system-call surface.
//!
//! Every simulated application thread receives a [`ThreadCtx`]. Shared
//! reads and writes funnel through it so the page-protection state machine
//! fires exactly where `mprotect`/`SIGSEGV` would in the real CVM; the
//! synchronization calls (`acquire`, `release`, `barrier`, `local_barrier`)
//! yield to the driver, which runs the protocol and the non-preemptive
//! scheduler.

use std::sync::Arc;

use cvm_sim::coop::Yielder;
use cvm_sim::sync::Mutex;
use cvm_sim::{SimDuration, SimRng};

use crate::node::NodeCell;
use crate::page::{Addr, PageId, PageState};
use crate::shared::Shareable;

pub use crate::barrier::ReduceOp;

/// Why an application thread yielded to the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockReason {
    /// Access to a page needing remote data.
    Fault {
        /// Faulting page.
        page: PageId,
        /// True for a write access.
        write: bool,
    },
    /// Lock acquire.
    Acquire {
        /// Lock index.
        lock: usize,
    },
    /// Lock release (non-blocking; the driver performs grant/hand-off and
    /// resumes the thread).
    Release {
        /// Lock index.
        lock: usize,
    },
    /// Global barrier arrival.
    Barrier,
    /// Local (intra-node) barrier arrival with an optional reduction
    /// contribution.
    LocalBarrier {
        /// Contribution, if this is a reducing barrier.
        reduce: Option<(ReduceOp, f64)>,
    },
    /// Global reduction arrival (CVM's built-in reduction types).
    GlobalReduce {
        /// Operator and this thread's contribution.
        reduce: (ReduceOp, f64),
    },
    /// End-of-initialization rendezvous.
    Startup,
    /// End-of-measurement rendezvous (statistics snapshot).
    EndMeasure,
    /// Voluntary yield.
    Yield,
    /// Virtual-clock read (the driver writes the node clock into the cell
    /// and resumes the thread immediately; see [`ThreadCtx::now_ns`]).
    Now,
    /// Sleep until the given absolute virtual time (open-loop arrival
    /// pacing; see [`ThreadCtx::sleep_until`]).
    SleepUntil {
        /// Absolute virtual nanoseconds to wake at (clamped to now if in
        /// the past).
        ns: u64,
    },
}

/// Per-thread cost constants copied out of the system configuration.
#[derive(Debug, Clone, Copy)]
pub struct CtxCosts {
    /// Coherence page size.
    pub page_size: usize,
    /// Base cost of one shared access, ns.
    pub access_base_ns: u64,
    /// SIGSEGV user-level handling cost, ns.
    pub signal_ns: u64,
    /// `mprotect` cost, ns.
    pub mprotect_ns: u64,
    /// Twin page copy cost, ns.
    pub twin_copy_ns: u64,
    /// Instruction pages in the code footprint (I-TLB model).
    pub code_pages: usize,
}

/// Handle through which an application thread touches the DSM.
///
/// Obtained inside the closure passed to
/// [`CvmBuilder::run`](crate::CvmBuilder::run); see the crate-level example.
#[derive(Debug)]
pub struct ThreadCtx<'a> {
    yielder: &'a Yielder<BlockReason>,
    cell: Arc<Mutex<NodeCell>>,
    costs: CtxCosts,
    global_id: usize,
    node: usize,
    local_id: usize,
    nodes: usize,
    threads_per_node: usize,
    started: bool,
    burst_ns: u64,
    rng: SimRng,
    // Synthetic private-data and instruction streams for the memory-system
    // simulator.
    priv_counter: u64,
    pc: u64,
    access_counter: u64,
}

/// Base virtual address of per-thread private regions (memsim only).
const PRIVATE_BASE: u64 = 0x1000_0000_0000;
/// Per-thread private working-set bytes (memsim only).
const PRIVATE_WS: u64 = 8 * 1024;
/// Base virtual address of the code segment (memsim only).
const CODE_BASE: u64 = 0x2000_0000_0000;

impl<'a> ThreadCtx<'a> {
    /// Assembles a context; called by the system when spawning threads.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        yielder: &'a Yielder<BlockReason>,
        cell: Arc<Mutex<NodeCell>>,
        costs: CtxCosts,
        global_id: usize,
        node: usize,
        local_id: usize,
        nodes: usize,
        threads_per_node: usize,
        rng: SimRng,
    ) -> Self {
        ThreadCtx {
            yielder,
            cell,
            costs,
            global_id,
            node,
            local_id,
            nodes,
            threads_per_node,
            started: false,
            burst_ns: 0,
            rng,
            priv_counter: 0,
            // Distinct starting offsets within the thread's code window.
            pc: (global_id as u64 * 7919 * 64) % (costs.code_pages.max(1) as u64 * 4096),
            access_counter: 0,
        }
    }

    /// Global thread id in `0..total_threads()`; threads of one node are
    /// consecutive, so contiguous chunk distributions keep node locality.
    pub fn global_id(&self) -> usize {
        self.global_id
    }

    /// This thread's node.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Thread index within the node, `0..threads_per_node()`.
    pub fn local_id(&self) -> usize {
        self.local_id
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Threads per node.
    pub fn threads_per_node(&self) -> usize {
        self.threads_per_node
    }

    /// Total threads in the system.
    pub fn total_threads(&self) -> usize {
        self.nodes * self.threads_per_node
    }

    /// The contiguous chunk `[lo, hi)` of `len` items owned by this thread
    /// under the paper's block distribution (divide by total threads,
    /// consecutive chunks to co-located threads).
    pub fn partition(&self, len: usize) -> (usize, usize) {
        partition_for(self.global_id, self.total_threads(), len)
    }

    /// Deterministic per-thread random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Charges `d` of pure computation to this thread's virtual time.
    pub fn work(&mut self, d: SimDuration) {
        self.burst_ns += d.as_ns();
    }

    /// Reads a shared value (application-facing sugar lives on
    /// [`SharedVec`](crate::SharedVec)).
    pub fn read_val<T: Shareable>(&mut self, addr: Addr) -> T {
        let cell_arc = Arc::clone(&self.cell);
        loop {
            let mut cell = cell_arc.lock();
            let page = addr.page(cell.page_size);
            if cell.state[page.0].readable() {
                self.charge_access(&mut cell, addr);
                if cell.track_steps {
                    cell.note_step_read(page.0);
                }
                let off = addr.0 as usize;
                let v = T::from_bytes(&cell.mem[off..off + T::SIZE]);
                return v;
            }
            drop(cell);
            self.block(BlockReason::Fault { page, write: false });
        }
    }

    /// Writes a shared value.
    ///
    /// # Panics
    ///
    /// Panics if called before [`startup_done`](Self::startup_done) by any
    /// thread other than global thread 0 (initialization is single-writer
    /// so that global data is uniform at startup, per the paper's
    /// programming model).
    pub fn write_val<T: Shareable>(&mut self, addr: Addr, v: T) {
        assert!(
            self.started || self.global_id == 0,
            "pre-startup writes must come from global thread 0"
        );
        let cell_arc = Arc::clone(&self.cell);
        loop {
            let mut cell = cell_arc.lock();
            let page = addr.page(cell.page_size);
            match cell.state[page.0] {
                PageState::ReadWrite => {
                    self.charge_access(&mut cell, addr);
                    if cell.track_steps {
                        cell.note_step_write(page.0);
                    }
                    let off = addr.0 as usize;
                    cell.mem[off..off + T::SIZE].copy_from_slice(&v.to_bytes());
                    return;
                }
                PageState::ReadOnly => {
                    // Local write fault: signal + twin (if first) + upgrade.
                    let fresh = cell.ensure_twin(page.0);
                    cell.state[page.0] = PageState::ReadWrite;
                    self.burst_ns += self.costs.signal_ns + self.costs.mprotect_ns;
                    if fresh {
                        self.burst_ns += self.costs.twin_copy_ns;
                    }
                    // Retry takes the ReadWrite arm.
                }
                PageState::Invalid | PageState::Unmapped => {
                    drop(cell);
                    self.block(BlockReason::Fault { page, write: true });
                }
            }
        }
    }

    /// Acquires global lock `lock`, blocking until held.
    pub fn acquire(&mut self, lock: usize) {
        self.block(BlockReason::Acquire { lock });
    }

    /// Releases global lock `lock`.
    ///
    /// The release itself does not block, but control passes through the
    /// driver so grants and local hand-offs happen immediately.
    pub fn release(&mut self, lock: usize) {
        self.block(BlockReason::Release { lock });
    }

    /// Arrives at the global barrier; returns when all threads in the
    /// system have arrived and the release has reached this node.
    pub fn barrier(&mut self) {
        self.block(BlockReason::Barrier);
    }

    /// Arrives at the node-local barrier (no network traffic).
    pub fn local_barrier(&mut self) {
        self.block(BlockReason::LocalBarrier { reduce: None });
    }

    /// Local barrier carrying a reduction: all co-located threads
    /// contribute `value` under `op`; every participant receives the
    /// combined result. Used to aggregate local updates into a single
    /// remote update, the paper's `r` modification.
    pub fn local_reduce(&mut self, op: ReduceOp, value: f64) -> f64 {
        self.block(BlockReason::LocalBarrier {
            reduce: Some((op, value)),
        });
        self.cell.lock().lb_result
    }

    /// Marks the end of single-threaded initialization. All threads must
    /// call it exactly once; global data becomes uniformly visible and all
    /// statistics and clocks reset to zero.
    pub fn startup_done(&mut self) {
        self.block(BlockReason::Startup);
        self.started = true;
    }

    /// Performs a system-wide reduction using CVM's built-in reduction
    /// support: contributions aggregate per node first (one arrival
    /// message per node, like barriers), then across nodes at the master;
    /// every thread receives the combined result. Synchronizes the
    /// *value* only — unlike [`barrier`](Self::barrier) it does not
    /// exchange write notices, so pair it with a barrier when memory
    /// ordering is also required.
    pub fn global_reduce(&mut self, op: ReduceOp, value: f64) -> f64 {
        self.block(BlockReason::GlobalReduce {
            reduce: (op, value),
        });
        self.cell.lock().gr_result
    }

    /// Marks the end of the measured region. All threads must call it
    /// (like a barrier); the run report snapshots statistics, clocks and
    /// traffic at this point, so verification code executed afterwards
    /// (checksums, assertions) does not perturb the measurements. If never
    /// called, the report covers the whole run.
    pub fn end_measured(&mut self) {
        self.block(BlockReason::EndMeasure);
    }

    /// Voluntarily yields the processor (CVM's explicit thread-switch
    /// system call).
    pub fn yield_now(&mut self) {
        self.block(BlockReason::Yield);
    }

    /// Reads this node's virtual clock, in nanoseconds.
    ///
    /// This is a blocking operation (control passes through the driver so
    /// the accumulated burst is charged first and the answer reflects all
    /// work done so far), which keeps reports byte-identical at any
    /// `--workers`/`--shards` count: the clock is never observed
    /// mid-burst.
    pub fn now_ns(&mut self) -> u64 {
        self.block(BlockReason::Now);
        self.cell.lock().now_ns
    }

    /// Sleeps until the absolute virtual time `ns` (no-op if already
    /// past). The open-loop primitive: arrival pacing independent of
    /// completion times, so queueing delay is visible in request latency
    /// instead of silently throttling the generator.
    pub fn sleep_until(&mut self, ns: u64) {
        self.block(BlockReason::SleepUntil { ns });
    }

    /// Records one end-to-end request latency into the run's `request`
    /// histogram (serving workloads; see
    /// [`DsmHistograms::request_ns`](crate::DsmHistograms)).
    pub fn record_request(&mut self, latency_ns: u64) {
        self.cell.lock().req_hist.record(latency_ns);
    }

    fn block(&mut self, reason: BlockReason) {
        {
            let mut cell = self.cell.lock();
            cell.burst_ns += self.burst_ns;
        }
        self.burst_ns = 0;
        self.yielder.block(reason);
    }

    /// Flushes any residual burst time; called by the runtime when the
    /// thread body returns.
    pub(crate) fn flush_burst(&mut self) {
        let mut cell = self.cell.lock();
        cell.burst_ns += self.burst_ns;
        self.burst_ns = 0;
    }

    fn charge_access(&mut self, cell: &mut NodeCell, addr: Addr) {
        self.burst_ns += self.costs.access_base_ns;
        self.access_counter += 1;
        if cell.memsim.is_none() {
            return;
        }
        let tid = self.global_id as u64;
        let window = self.costs.code_pages.max(1) as u64 * 4096;
        // Advance the synthetic instruction pointer within this thread's
        // current code window; different threads occupy different windows
        // (they execute different phases of the shared program), so the
        // combined hot instruction footprint grows with interleaving.
        self.pc = (self.pc + 64) % window;
        let window_base = CODE_BASE + (tid % 4) * window;
        let priv_addr = PRIVATE_BASE + tid * PRIVATE_WS * 4 + (self.priv_counter * 64) % PRIVATE_WS;
        let do_private = self.access_counter.is_multiple_of(4);
        if do_private {
            self.priv_counter += 1;
        }
        let pc = window_base + self.pc;
        let mem = cell.memsim.as_mut().expect("memsim enabled");
        let data = mem.data_access(addr.0);
        self.burst_ns += data.cost_ns;
        self.burst_ns += mem.inst_access(pc);
        if do_private {
            let p = mem.data_access(priv_addr);
            self.burst_ns += p.cost_ns;
        }
    }
}

/// Contiguous block partition of `len` items among `parts` owners.
pub fn partition_for(owner: usize, parts: usize, len: usize) -> (usize, usize) {
    let base = len / parts;
    let extra = len % parts;
    let lo = owner * base + owner.min(extra);
    let hi = lo + base + usize::from(owner < extra);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_once() {
        for parts in 1..10 {
            for len in [0usize, 1, 7, 100, 101] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for owner in 0..parts {
                    let (lo, hi) = partition_for(owner, parts, len);
                    assert_eq!(lo, prev_hi, "chunks are contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, len);
                assert_eq!(prev_hi, len);
            }
        }
    }

    #[test]
    fn partition_is_balanced() {
        for owner in 0..8 {
            let (lo, hi) = partition_for(owner, 8, 100);
            assert!(hi - lo == 12 || hi - lo == 13, "owner {owner}: {}", hi - lo);
        }
    }
}
