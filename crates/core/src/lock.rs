//! Distributed locks with local per-lock queues.
//!
//! Acquires go to a static *manager* (lock id modulo node count) which
//! forwards the request to the last requester, forming a distributed queue:
//! two messages when the manager is the last owner, three otherwise.
//!
//! The paper's multi-threading change: each node keeps a **local queue**
//! per lock, so multiple local acquires cost a single remote request, and
//! the release path *prefers local waiters over remote requesters* — even
//! if the remote thread asked first. As the paper notes, "the result is
//! neither fair nor guaranteed to make progress, but performs well in
//! practice"; the same policy is reproduced here (and exercised by tests).
//!
//! Under sustained open-loop load the unbounded form of that policy can
//! starve a parked remote waiter *forever*: as long as local threads keep
//! re-acquiring, the remote node never gets the token. The
//! `local_grant_cap` argument to [`LockLocal::release`] bounds the number
//! of consecutive local hand-offs made past a parked remote waiter; once
//! the cap is reached the remote waiter is served even under
//! `prefer_local`. A cap of `0` (the default configuration) preserves the
//! paper's unbounded behaviour exactly.

use std::collections::VecDeque;
use std::fmt;

use crate::interval::VectorTime;

/// Manager-side view of one lock: the tail of the distributed queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockManager {
    /// The node that most recently requested (and will eventually own) the
    /// lock; new requests are forwarded here.
    pub tail: usize,
}

impl LockManager {
    /// A fresh lock whose token starts at the manager node.
    pub fn new(manager_node: usize) -> Self {
        LockManager { tail: manager_node }
    }

    /// Registers a new requester; returns the node the request must be
    /// forwarded to (the previous tail).
    pub fn enqueue(&mut self, acquirer: usize) -> usize {
        std::mem::replace(&mut self.tail, acquirer)
    }
}

/// One node's view of one lock.
#[derive(Debug, Clone, Default)]
pub struct LockLocal {
    /// True if this node holds the token (lock may be held or free).
    pub cached: bool,
    /// Global thread id of the local holder, if held.
    pub holder: Option<usize>,
    /// Local threads waiting, in arrival order (served before any remote
    /// requester).
    pub local_queue: VecDeque<usize>,
    /// A forwarded remote request waiting for our release, with the
    /// acquirer's vector time.
    pub remote_waiter: Option<(usize, VectorTime)>,
    /// True if this node has a remote acquire outstanding.
    pub requested: bool,
    /// Consecutive local hand-offs made while a remote waiter was parked
    /// (the starvation counter the cap bounds). Reset whenever the remote
    /// waiter is served or the token leaves this node.
    pub local_grants: u32,
}

/// What a local acquire attempt should do, as decided by
/// [`LockLocal::try_acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Token cached and free: the thread holds the lock immediately.
    LocalGrant,
    /// Somebody local already holds or has requested it: join the local
    /// queue (counted as *Block Same Lock*).
    QueuedLocally,
    /// Nobody local is involved: send a remote request and join the queue
    /// as its beneficiary.
    SendRequest,
}

impl LockLocal {
    /// Decides and applies the local acquire transition for thread `tid`.
    pub fn try_acquire(&mut self, tid: usize) -> AcquireOutcome {
        if self.cached && self.holder.is_none() && self.local_queue.is_empty() {
            self.holder = Some(tid);
            AcquireOutcome::LocalGrant
        } else if self.cached || self.requested {
            self.local_queue.push_back(tid);
            AcquireOutcome::QueuedLocally
        } else {
            self.requested = true;
            self.local_queue.push_back(tid);
            AcquireOutcome::SendRequest
        }
    }

    /// What a release should do next. With `prefer_local` (the paper's
    /// default) local queue inhabitants win over any remote waiter — even
    /// one that asked first; otherwise the remote waiter is served first
    /// and remaining local waiters must re-request.
    ///
    /// `local_grant_cap` bounds starvation: after that many *consecutive*
    /// local hand-offs past a parked remote waiter, the remote waiter is
    /// served despite `prefer_local`. `0` means unbounded (the paper's
    /// policy, and the default).
    pub fn release(
        &mut self,
        tid: usize,
        prefer_local: bool,
        local_grant_cap: u32,
    ) -> ReleaseOutcome {
        debug_assert_eq!(self.holder, Some(tid), "release by non-holder");
        self.holder = None;
        let capped = local_grant_cap != 0
            && self.remote_waiter.is_some()
            && self.local_grants >= local_grant_cap;
        if prefer_local && !capped {
            if let Some(next) = self.local_queue.pop_front() {
                self.holder = Some(next);
                if self.remote_waiter.is_some() {
                    self.local_grants += 1;
                }
                return ReleaseOutcome::LocalHandoff(next);
            }
        }
        if let Some((node, vt)) = self.remote_waiter.take() {
            self.cached = false;
            self.local_grants = 0;
            ReleaseOutcome::GrantRemote(node, vt)
        } else if let Some(next) = self.local_queue.pop_front() {
            self.holder = Some(next);
            ReleaseOutcome::LocalHandoff(next)
        } else {
            self.local_grants = 0;
            ReleaseOutcome::KeepCached
        }
    }

    /// Applies an incoming grant: this node now owns the token; the head of
    /// the local queue becomes the holder. Returns that thread.
    ///
    /// # Panics
    ///
    /// Panics if no local thread was waiting (a grant without a requester).
    pub fn apply_grant(&mut self) -> usize {
        assert!(self.requested, "grant without request");
        self.requested = false;
        self.cached = true;
        self.local_grants = 0;
        let next = self
            .local_queue
            .pop_front()
            .expect("grant with empty local queue");
        self.holder = Some(next);
        next
    }

    /// Handles a forwarded remote request: grant now if the token is free
    /// here, otherwise park the requester.
    pub fn handle_forward(&mut self, acquirer: usize, vt: VectorTime) -> ForwardOutcome {
        if self.cached && self.holder.is_none() && self.local_queue.is_empty() {
            self.cached = false;
            ForwardOutcome::GrantNow(acquirer, vt)
        } else {
            debug_assert!(
                self.remote_waiter.is_none(),
                "distributed queue allows one pending forward"
            );
            self.remote_waiter = Some((acquirer, vt));
            ForwardOutcome::Parked
        }
    }
}

/// Result of [`LockLocal::release`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The named local thread now holds the lock.
    LocalHandoff(usize),
    /// Send a grant (with notices) to this node.
    GrantRemote(usize, VectorTime),
    /// Keep the token cached for future local reuse.
    KeepCached,
}

/// Result of [`LockLocal::handle_forward`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// Send the grant immediately.
    GrantNow(usize, VectorTime),
    /// The requester waits for our release.
    Parked,
}

impl fmt::Display for LockLocal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock[cached {} holder {:?} queue {} remote {:?} requested {}]",
            self.cached,
            self.holder,
            self.local_queue.len(),
            self.remote_waiter.as_ref().map(|(n, _)| *n),
            self.requested
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned() -> LockLocal {
        LockLocal {
            cached: true,
            ..Default::default()
        }
    }

    #[test]
    fn cached_free_lock_grants_locally() {
        let mut l = owned();
        assert_eq!(l.try_acquire(5), AcquireOutcome::LocalGrant);
        assert_eq!(l.holder, Some(5));
    }

    #[test]
    fn second_local_acquire_queues() {
        let mut l = owned();
        l.try_acquire(1);
        assert_eq!(l.try_acquire(2), AcquireOutcome::QueuedLocally);
        assert_eq!(l.local_queue.len(), 1);
    }

    #[test]
    fn uncached_lock_sends_one_request_total() {
        let mut l = LockLocal::default();
        assert_eq!(l.try_acquire(1), AcquireOutcome::SendRequest);
        // A second local thread piggybacks on the outstanding request —
        // the paper's "single remote lock request" aggregation.
        assert_eq!(l.try_acquire(2), AcquireOutcome::QueuedLocally);
        assert!(l.requested);
    }

    #[test]
    fn release_prefers_local_waiters_over_remote() {
        let mut l = owned();
        l.try_acquire(1);
        l.try_acquire(2);
        l.remote_waiter = Some((3, VectorTime::new(4)));
        // Thread 2 waited *after* the remote node, but still wins.
        assert_eq!(l.release(1, true, 0), ReleaseOutcome::LocalHandoff(2));
        assert_eq!(l.holder, Some(2));
        // Only when the local queue drains does the remote waiter get it.
        assert!(matches!(
            l.release(2, true, 0),
            ReleaseOutcome::GrantRemote(3, _)
        ));
        assert!(!l.cached);
    }

    #[test]
    fn release_with_nobody_keeps_token() {
        let mut l = owned();
        l.try_acquire(1);
        assert_eq!(l.release(1, true, 0), ReleaseOutcome::KeepCached);
        assert!(l.cached);
        // Re-acquire is then free.
        assert_eq!(l.try_acquire(1), AcquireOutcome::LocalGrant);
    }

    #[test]
    fn unfair_policy_ablated_serves_remote_first() {
        let mut l = owned();
        l.try_acquire(1);
        l.try_acquire(2);
        l.remote_waiter = Some((3, VectorTime::new(4)));
        // Fair-ish ablation: the remote waiter wins over queued thread 2.
        assert!(matches!(
            l.release(1, false, 0),
            ReleaseOutcome::GrantRemote(3, _)
        ));
        assert!(!l.cached);
        assert_eq!(l.local_queue.front(), Some(&2), "thread 2 must re-request");
    }

    #[test]
    fn grant_wakes_head_of_queue() {
        let mut l = LockLocal::default();
        l.try_acquire(7);
        l.try_acquire(8);
        assert_eq!(l.apply_grant(), 7);
        assert!(l.cached);
        assert_eq!(l.holder, Some(7));
        assert_eq!(l.local_queue.front(), Some(&8));
    }

    #[test]
    fn forward_grants_when_free() {
        let mut l = owned();
        match l.handle_forward(4, VectorTime::new(2)) {
            ForwardOutcome::GrantNow(4, _) => {}
            other => panic!("expected immediate grant, got {other:?}"),
        }
        assert!(!l.cached);
    }

    #[test]
    fn forward_parks_when_held() {
        let mut l = owned();
        l.try_acquire(1);
        assert_eq!(
            l.handle_forward(4, VectorTime::new(2)),
            ForwardOutcome::Parked
        );
        assert!(l.remote_waiter.is_some());
    }

    /// Regression: with no cap, a steady local acquire/release stream
    /// starves a parked remote waiter forever — every release finds the
    /// local queue non-empty and hands off locally. This test drives that
    /// loop and asserts (a) the uncapped policy never serves the remote
    /// waiter over many rounds, and (b) a cap of 2 serves it on the third
    /// release. It fails on the pre-cap code by construction: without the
    /// `local_grant_cap` bound there is no release that picks the remote
    /// waiter while locals are queued.
    #[test]
    fn local_grant_cap_bounds_remote_starvation() {
        // Uncapped (cap = 0): the paper's policy, starvation is real.
        let mut l = owned();
        l.try_acquire(1);
        l.remote_waiter = Some((9, VectorTime::new(4)));
        let mut holder = 1;
        for round in 0..1000 {
            // A fresh local thread queues before every release, modeling
            // sustained open-loop local contention.
            l.try_acquire(100 + round);
            match l.release(holder, true, 0) {
                ReleaseOutcome::LocalHandoff(next) => holder = next,
                other => panic!(
                    "uncapped policy must keep preferring locals (round {round}), got {other:?}"
                ),
            }
        }
        assert!(
            l.remote_waiter.is_some(),
            "remote waiter starved as expected"
        );

        // Capped at 2: the third release past the parked waiter grants it.
        let mut l = owned();
        l.try_acquire(1);
        l.remote_waiter = Some((9, VectorTime::new(4)));
        l.try_acquire(2);
        assert_eq!(l.release(1, true, 2), ReleaseOutcome::LocalHandoff(2));
        l.try_acquire(3);
        assert_eq!(l.release(2, true, 2), ReleaseOutcome::LocalHandoff(3));
        l.try_acquire(4);
        let out = l.release(3, true, 2);
        assert!(
            matches!(out, ReleaseOutcome::GrantRemote(9, _)),
            "cap reached: remote waiter must win, got {out:?}"
        );
        assert!(!l.cached, "token left the node");
        assert_eq!(l.local_grants, 0, "streak resets once the waiter is served");
        assert_eq!(
            l.local_queue.front(),
            Some(&4),
            "queued local thread 4 must re-request after the token leaves"
        );
    }

    /// The streak only counts hand-offs made *past a parked waiter*; local
    /// churn with no remote waiter never triggers the cap.
    #[test]
    fn cap_ignores_handoffs_without_remote_waiter() {
        let mut l = owned();
        l.try_acquire(1);
        for round in 0..10 {
            l.try_acquire(2 + round);
            assert_eq!(
                l.release(1 + round, true, 2),
                ReleaseOutcome::LocalHandoff(2 + round)
            );
        }
        assert_eq!(l.local_grants, 0);
        // A waiter parks now: the full cap budget is still available.
        l.remote_waiter = Some((9, VectorTime::new(4)));
        l.try_acquire(50);
        assert_eq!(l.release(11, true, 2), ReleaseOutcome::LocalHandoff(50));
        assert_eq!(l.local_grants, 1);
    }

    #[test]
    fn manager_builds_distributed_queue() {
        let mut m = LockManager::new(0);
        assert_eq!(m.enqueue(3), 0); // forward to manager-node (2-hop case)
        assert_eq!(m.enqueue(5), 3); // forward to node 3 (3-hop case)
        assert_eq!(m.tail, 5);
    }
}
