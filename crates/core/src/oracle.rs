//! The online invariant oracle: named protocol invariants, violation
//! findings, and protocol fault injection for mutation self-tests.
//!
//! The paper's latency-hiding argument rests on the LRC protocol staying
//! correct under every interleaving the cooperative scheduler can produce.
//! This module gives each protocol invariant a *name* and a single
//! reporting path: when verification is off, a violation panics with the
//! invariant's name and the triggering event (replacing the former
//! scattered `assert!`s); when verification is on
//! ([`CvmConfig::verify`](crate::CvmConfig)), violations are recorded as
//! [`Finding`]s in a [`FindingSink`] shared with the caller, so the run
//! continues best-effort and the findings survive even if the application
//! later panics on the corrupted state.
//!
//! [`InjectFault`] mutates the protocol on purpose — dropping a write
//! notice, reordering a diff application, skipping an invalidation — so
//! the checker can prove each invariant actually fires (the mutation
//! self-tests of `cvm check`).

use std::fmt;
use std::sync::Arc;

use cvm_sim::sync::Mutex;
use cvm_sim::VirtualTime;

/// Upper bound on recorded findings; a genuinely broken protocol can
/// violate an invariant at every synchronization, and one representative
/// prefix is enough to diagnose it.
pub const MAX_FINDINGS: usize = 4096;

/// Every named invariant the oracle (or the offline race detector) can
/// report. `DESIGN.md` lists each with its paper justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// A system needs at least one node and one thread per node.
    ConfigPositive,
    /// Lock indices must fall inside the static lock table.
    LockIndexInRange,
    /// `startup_done` must find the wire quiescent: statistics are zeroed
    /// and memory made uniform, which is only sound with nothing in flight.
    QuiescentStartup,
    /// A node keeps at most one remote request per lock outstanding (the
    /// local queue aggregates later acquires).
    SingleLockRequest,
    /// Barrier arrival and reduction messages go to the master (node 0).
    BarrierMasterRouting,
    /// Arrivals and releases must carry the master's current episode
    /// number; a node may never skip an episode.
    BarrierEpochAgreement,
    /// An episode sees exactly the expected number of arrivals.
    BarrierArrivalCount,
    /// A node's own vector-time component equals its closed-interval
    /// count, and closes are contiguous (interval `i` is followed by
    /// `i + 1`).
    VtMonotonic,
    /// Interval indices are assigned contiguously per node.
    IntervalContiguity,
    /// No vector time names an interval its writer has not closed.
    VtBounded,
    /// When a node's vector time advances past a writer's interval, the
    /// write notices of that interval must have reached the node — a
    /// dropped notice means a silently stale copy.
    NoticeCoverage,
    /// A page with un-applied write notices must not be readable.
    PendingImpliesInvalid,
    /// A home node serves a page request only once its per-writer
    /// watermarks cover every `(writer, interval)` the request named —
    /// serving earlier hands out a copy missing flushed writes.
    HomeServeCoverage,
    /// Applying a freshly created diff to the twin it was diffed against
    /// must reproduce the current page contents.
    TwinDiffRoundTrip,
    /// Diffs are applied in happens-before order: ascending
    /// `(close gseq, writer, tag)`.
    DiffApplyOrder,
    /// At most one node caches a lock's token, and a holder implies the
    /// token is present.
    LockSingleToken,
    /// A lock grant arrives only where a request is outstanding and a
    /// local thread is waiting — otherwise a wakeup has been lost.
    LockGrantHasWaiter,
    /// Offline (race detector): a node's time advanced past a concurrent
    /// write to a page it still holds a valid copy of, without an
    /// invalidation or diff — a true lost update, as opposed to benign
    /// multiple-writer concurrency.
    LostUpdate,
    /// The trace overflowed its capacity, so offline analyses are
    /// incomplete.
    TraceOverflow,
}

impl Invariant {
    /// Hard precondition form: panics immediately (never records) when
    /// `cond` is false, naming the invariant. Used for caller errors that
    /// precede any run — invalid configurations, out-of-range lock ids.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is false.
    pub fn require(self, cond: bool, detail: impl FnOnce() -> String) {
        assert!(cond, "invariant {self} violated: {}", detail());
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Invariant::ConfigPositive => "ConfigPositive",
            Invariant::LockIndexInRange => "LockIndexInRange",
            Invariant::QuiescentStartup => "QuiescentStartup",
            Invariant::SingleLockRequest => "SingleLockRequest",
            Invariant::BarrierMasterRouting => "BarrierMasterRouting",
            Invariant::BarrierEpochAgreement => "BarrierEpochAgreement",
            Invariant::BarrierArrivalCount => "BarrierArrivalCount",
            Invariant::VtMonotonic => "VtMonotonic",
            Invariant::IntervalContiguity => "IntervalContiguity",
            Invariant::VtBounded => "VtBounded",
            Invariant::NoticeCoverage => "NoticeCoverage",
            Invariant::PendingImpliesInvalid => "PendingImpliesInvalid",
            Invariant::HomeServeCoverage => "HomeServeCoverage",
            Invariant::TwinDiffRoundTrip => "TwinDiffRoundTrip",
            Invariant::DiffApplyOrder => "DiffApplyOrder",
            Invariant::LockSingleToken => "LockSingleToken",
            Invariant::LockGrantHasWaiter => "LockGrantHasWaiter",
            Invariant::LostUpdate => "LostUpdate",
            Invariant::TraceOverflow => "TraceOverflow",
        };
        f.write_str(name)
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant was violated.
    pub invariant: Invariant,
    /// Node the violation was observed at, if attributable to one.
    pub node: Option<usize>,
    /// Virtual time of the triggering event.
    pub at: VirtualTime,
    /// Human-readable description of the triggering event.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {} violated", self.invariant)?;
        if let Some(n) = self.node {
            write!(f, " on n{n}")?;
        }
        write!(f, " at {:.3}us: {}", self.at.as_us_f64(), self.detail)
    }
}

/// Shared, clonable collection of [`Finding`]s.
///
/// The sink is held by both the driver and the caller (via
/// [`CvmConfig::verify_sink`](crate::CvmConfig)), so findings recorded
/// before an application panic remain readable after `catch_unwind`.
/// Recording saturates at [`MAX_FINDINGS`].
#[derive(Debug, Clone, Default)]
pub struct FindingSink {
    inner: Arc<Mutex<Vec<Finding>>>,
}

impl FindingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding (dropped silently past [`MAX_FINDINGS`]).
    pub fn record(&self, finding: Finding) {
        let mut v = self.inner.lock();
        if v.len() < MAX_FINDINGS {
            v.push(finding);
        }
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> Vec<Finding> {
        self.inner.lock().clone()
    }

    /// Number of findings recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// The driver-side invariant checker.
///
/// Disabled (the default), a failing check panics with the invariant's
/// name — the promoted form of the old ad-hoc asserts. Recording
/// (`CvmConfig::verify`), a failing check appends a [`Finding`] to the
/// sink and lets the run continue best-effort.
#[derive(Debug, Clone)]
pub struct Oracle {
    sink: Option<FindingSink>,
}

impl Oracle {
    /// An oracle that panics on violations (normal runs).
    pub fn disabled() -> Self {
        Oracle { sink: None }
    }

    /// An oracle that records violations into `sink` (verify runs).
    pub fn recording(sink: FindingSink) -> Self {
        Oracle { sink: Some(sink) }
    }

    /// True when violations are recorded rather than panicking. Call
    /// sites guard *new* (non-promoted) checks on this, so runs without
    /// `verify` behave exactly as before.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Checks one invariant instance. `detail` is only evaluated on
    /// violation.
    ///
    /// # Panics
    ///
    /// Panics on violation when the oracle is disabled.
    pub fn check(
        &self,
        invariant: Invariant,
        ok: bool,
        node: Option<usize>,
        at: VirtualTime,
        detail: impl FnOnce() -> String,
    ) {
        if ok {
            return;
        }
        let finding = Finding {
            invariant,
            node,
            at,
            detail: detail(),
        };
        match &self.sink {
            Some(sink) => sink.record(finding),
            None => panic!("{finding}"),
        }
    }
}

/// A deliberate protocol mutation, used by the `cvm check` mutation
/// self-tests to prove the oracle catches real faults. `nth` selects which
/// occurrence of the fault site to corrupt (0 = the first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectFault {
    /// Drop the `nth` write notice a node would send with a barrier
    /// arrival (caught by `NoticeCoverage` online and `LostUpdate`
    /// offline).
    DropWriteNotice {
        /// Which notice emission to drop.
        nth: u64,
    },
    /// Reverse the diff application order of the `nth` multi-diff fetch
    /// (caught by `DiffApplyOrder`).
    ReorderDiffApply {
        /// Which multi-diff fetch to corrupt.
        nth: u64,
    },
    /// Skip the `nth` invalidation of a resident copy, leaving a stale
    /// page readable (caught by `PendingImpliesInvalid` online and
    /// `LostUpdate` offline).
    SkipInvalidate {
        /// Which invalidation to skip.
        nth: u64,
    },
    /// Home-lazy only: serve the `nth` uncovered home request (or parked
    /// retry) as if its per-writer watermark check passed, returning a
    /// possibly stale page (caught by `PendingImpliesInvalid` online and
    /// `LostUpdate` offline).
    SkipHomeWatermark {
        /// Which uncovered serve to corrupt.
        nth: u64,
    },
    /// Drop the write notices riding the `nth` notice-carrying lock
    /// grant; the grantee still merges the granter's vector time, so its
    /// clock advances past writes it was never told about (caught by
    /// `NoticeCoverage` at the merge).
    DropGrantNotice {
        /// Which notice-carrying grant to strip.
        nth: u64,
    },
}

impl InjectFault {
    /// Parses the CLI syntax `kind[:nth]` where kind is `drop-notice`,
    /// `reorder-diff` or `skip-invalidate`.
    pub fn parse(s: &str) -> Option<Self> {
        let (kind, nth) = match s.split_once(':') {
            Some((k, n)) => (k, n.parse().ok()?),
            None => (s, 0),
        };
        Some(match kind {
            "drop-notice" => InjectFault::DropWriteNotice { nth },
            "reorder-diff" => InjectFault::ReorderDiffApply { nth },
            "skip-invalidate" => InjectFault::SkipInvalidate { nth },
            "skip-watermark" => InjectFault::SkipHomeWatermark { nth },
            "drop-grant-notice" => InjectFault::DropGrantNotice { nth },
            _ => return None,
        })
    }
}

impl fmt::Display for InjectFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectFault::DropWriteNotice { nth } => write!(f, "drop-notice:{nth}"),
            InjectFault::ReorderDiffApply { nth } => write!(f, "reorder-diff:{nth}"),
            InjectFault::SkipInvalidate { nth } => write!(f, "skip-invalidate:{nth}"),
            InjectFault::SkipHomeWatermark { nth } => write!(f, "skip-watermark:{nth}"),
            InjectFault::DropGrantNotice { nth } => write!(f, "drop-grant-notice:{nth}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_oracle_panics_with_invariant_name() {
        let o = Oracle::disabled();
        let err = std::panic::catch_unwind(|| {
            o.check(
                Invariant::NoticeCoverage,
                false,
                Some(2),
                VirtualTime::ZERO,
                || "missing notices".to_owned(),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("NoticeCoverage"), "{msg}");
        assert!(msg.contains("n2"), "{msg}");
    }

    #[test]
    fn recording_oracle_collects_instead_of_panicking() {
        let sink = FindingSink::new();
        let o = Oracle::recording(sink.clone());
        o.check(Invariant::VtBounded, true, None, VirtualTime::ZERO, || {
            unreachable!("detail must not be evaluated on success")
        });
        o.check(
            Invariant::DiffApplyOrder,
            false,
            Some(1),
            VirtualTime::from_us(7),
            || "out of order".to_owned(),
        );
        assert_eq!(sink.len(), 1);
        let f = &sink.snapshot()[0];
        assert_eq!(f.invariant, Invariant::DiffApplyOrder);
        assert_eq!(f.node, Some(1));
        assert!(format!("{f}").contains("DiffApplyOrder"));
    }

    #[test]
    fn sink_saturates_at_cap() {
        let sink = FindingSink::new();
        for i in 0..(MAX_FINDINGS + 10) {
            sink.record(Finding {
                invariant: Invariant::LostUpdate,
                node: None,
                at: VirtualTime::ZERO,
                detail: format!("f{i}"),
            });
        }
        assert_eq!(sink.len(), MAX_FINDINGS);
    }

    #[test]
    fn inject_fault_parse_round_trip() {
        for text in [
            "drop-notice:0",
            "reorder-diff:3",
            "skip-invalidate:17",
            "skip-watermark:1",
            "drop-grant-notice:2",
        ] {
            let f = InjectFault::parse(text).expect("parses");
            assert_eq!(format!("{f}"), text);
        }
        assert_eq!(
            InjectFault::parse("drop-notice"),
            Some(InjectFault::DropWriteNotice { nth: 0 })
        );
        assert_eq!(InjectFault::parse("unknown"), None);
        assert_eq!(InjectFault::parse("drop-notice:x"), None);
    }

    #[test]
    #[should_panic(expected = "invariant LockIndexInRange violated")]
    fn require_panics_with_name() {
        Invariant::LockIndexInRange.require(false, || "lock 9999".to_owned());
    }
}
