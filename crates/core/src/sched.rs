//! The per-node non-preemptive thread scheduler.
//!
//! Scheduling policy from the paper: FIFO ready queue; a switch happens
//! when the running thread blocks on a remote request (fault, lock,
//! barrier) or yields explicitly; replies make blocked threads ready again
//! ("misplaced replies" simply queue the owning thread — non-preemption
//! means it runs when the current thread next blocks). Each switch between
//! *different* threads costs 8 µs and is counted.

use std::collections::VecDeque;
use std::fmt;

use cvm_sim::VirtualTime;

/// What a node is waiting for while idle; used to attribute non-overlapped
/// remote latency (Figure 1 / Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Waiting for remote data (page/diff replies).
    Fault,
    /// Waiting for a lock grant.
    Lock,
    /// Waiting for a barrier release.
    Barrier,
    /// All runnable threads are sleeping on the open-loop arrival clock
    /// ([`ThreadCtx::sleep_until`](crate::ThreadCtx::sleep_until)) — the
    /// node is under-offered, not blocked on the DSM.
    Idle,
    /// Anything else (startup rendezvous).
    Other,
}

/// Scheduler state of one node.
#[derive(Debug)]
pub struct NodeSched {
    /// Runnable threads (global ids), FIFO.
    pub ready: VecDeque<usize>,
    /// The thread that ran most recently (switch-cost accounting).
    pub last_ran: Option<usize>,
    /// The node's local virtual clock (end of its last burst).
    pub clock: VirtualTime,
    /// If idle, when the idleness began and what it is attributed to.
    pub idle_since: Option<(VirtualTime, WaitClass)>,
    /// True if a `NodeResume` event is already queued.
    pub resume_scheduled: bool,
    /// Threads of this node whose body has returned.
    pub finished: usize,
    /// Total threads on this node.
    pub total: usize,
    /// Threads currently sleeping on the virtual clock
    /// (`sleep_until`), woken by `MainEvent::ThreadWake`.
    pub sleeping: usize,
}

impl NodeSched {
    /// Creates the scheduler for a node with `total` threads.
    pub fn new(total: usize) -> Self {
        NodeSched {
            ready: VecDeque::new(),
            last_ran: None,
            clock: VirtualTime::ZERO,
            idle_since: None,
            resume_scheduled: false,
            finished: 0,
            total,
            sleeping: 0,
        }
    }

    /// True once every thread on the node has finished.
    pub fn all_finished(&self) -> bool {
        self.finished == self.total
    }

    /// True if a resume would find work.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }
}

impl fmt::Display for NodeSched {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sched[ready {} finished {}/{} clock {}]",
            self.ready.len(),
            self.finished,
            self.total,
            self.clock
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sched_is_empty() {
        let s = NodeSched::new(4);
        assert!(!s.has_ready());
        assert!(!s.all_finished());
        assert_eq!(s.clock, VirtualTime::ZERO);
    }

    #[test]
    fn finish_tracking() {
        let mut s = NodeSched::new(2);
        s.finished = 1;
        assert!(!s.all_finished());
        s.finished = 2;
        assert!(s.all_finished());
    }
}
