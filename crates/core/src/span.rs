//! Causal span tracing: a deterministic span forest over every logical
//! DSM operation.
//!
//! A *span* covers one end-to-end protocol operation — a remote page
//! fault, a page or diff pull, a lock acquire with its 2-hop/3-hop
//! forwarding chain, a barrier episode (per node), a global reduction,
//! or a retransmission burst. Spans carry their id inside message
//! headers ([`cvm_net::Message::span`]) so work performed on remote
//! nodes links back to the span that caused it, including across
//! retransmits and fault-plan drops; the notice→refault chain is linked
//! through the invalidating span (see `page_cause` in the driver).
//!
//! Every message delivery contributes a [`Hop`] whose timing comes from
//! the network's [`DeliveryInfo`]: `backoff` (send → transmit of the
//! delivered copy, nonzero only after retransmission), `wire`
//! (transmit → arrival) and `handler` (arrival → service completion,
//! including handler queueing and in-order hold). The per-span
//! critical-path engine ([`SpanRecord::segments`]) walks hops backward
//! from the close, picking a non-overlapping chain, so
//! `wire + handler + backoff + protocol_wait` equals the span's
//! duration *exactly* — protocol-wait is the residual the chain cannot
//! explain (e.g. a lock holder still inside its critical section).
//!
//! Everything here is driven by the simulator's virtual clock and the
//! driver's deterministic event order, so the forest is seed-stable and
//! byte-identical across `--workers` counts. When disabled (the
//! default) every operation is a no-op behind one branch.

use std::collections::{BTreeSet, HashMap};

use cvm_net::{DeliveryInfo, MsgKind};
use cvm_sim::hist::Log2Hist;
use cvm_sim::json::JsonValue;
use cvm_sim::VirtualTime;

/// What operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A remote page fault, from signal entry to fetch completion.
    RemoteFault,
    /// A full-page pull (page request/reply or home request/reply),
    /// child of a [`SpanKind::RemoteFault`].
    PagePull,
    /// A per-writer diff pull, child of a [`SpanKind::RemoteFault`].
    DiffPull,
    /// A remote lock acquire: request → manager (→ owner) → grant.
    LockAcquire,
    /// One node's barrier episode: arrival sent → release applied.
    Barrier,
    /// One node's global-reduction episode.
    Reduce,
    /// A retransmission burst: the interval a delivered message spent
    /// waiting on retry timers (synthesized from hop metadata).
    Retransmit,
}

impl SpanKind {
    /// All kinds, in serialization order.
    pub const ALL: [SpanKind; 7] = [
        SpanKind::RemoteFault,
        SpanKind::PagePull,
        SpanKind::DiffPull,
        SpanKind::LockAcquire,
        SpanKind::Barrier,
        SpanKind::Reduce,
        SpanKind::Retransmit,
    ];

    /// Stable lower-case name used in JSON and rendered output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::RemoteFault => "remote_fault",
            SpanKind::PagePull => "page_pull",
            SpanKind::DiffPull => "diff_pull",
            SpanKind::LockAcquire => "lock_acquire",
            SpanKind::Barrier => "barrier",
            SpanKind::Reduce => "reduce",
            SpanKind::Retransmit => "retransmit",
        }
    }
}

/// The resource a span is about, for `cvm explain --resource`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanResource {
    /// Not tied to a single resource (reductions).
    None,
    /// A shared page.
    Page(usize),
    /// A lock index.
    Lock(usize),
    /// A barrier episode number.
    Barrier(u32),
}

impl SpanResource {
    /// Stable textual form (`page:17`, `lock:3`, `barrier:2`, `-`).
    pub fn label(self) -> String {
        match self {
            SpanResource::None => "-".to_owned(),
            SpanResource::Page(p) => format!("page:{p}"),
            SpanResource::Lock(l) => format!("lock:{l}"),
            SpanResource::Barrier(e) => format!("barrier:{e}"),
        }
    }
}

/// One message delivery attributed to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Wire kind of the message.
    pub kind: MsgKind,
    /// Original send time.
    pub sent: VirtualTime,
    /// Transmit time of the delivered copy (later than `sent` only
    /// after retransmission).
    pub tx: VirtualTime,
    /// Arrival at the destination.
    pub arrived: VirtualTime,
    /// Handler service completion (the delivery instant).
    pub serviced: VirtualTime,
    /// Retransmissions before the delivered copy.
    pub retries: u32,
}

/// Where a span's end-to-end time went, in nanoseconds. For a closed
/// span the four components sum to the duration exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Segments {
    /// Time on the wire along the critical hop chain.
    pub wire: u64,
    /// Handler service plus queueing/hold along the chain.
    pub handler: u64,
    /// Residual the hop chain cannot explain: protocol-level waiting
    /// (lock held remotely, barrier stragglers, parked requests).
    pub protocol_wait: u64,
    /// Retransmission backoff along the chain.
    pub backoff: u64,
}

impl Segments {
    /// Component sum.
    pub fn total(&self) -> u64 {
        self.wire + self.handler + self.protocol_wait + self.backoff
    }

    fn to_json(self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("wire_ns", self.wire);
        o.set("handler_ns", self.handler);
        o.set("wait_ns", self.protocol_wait);
        o.set("backoff_ns", self.backoff);
        o
    }
}

/// One span of the forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id, allocated sequentially from 1 (0 means "no span").
    pub id: u64,
    /// Parent span id, 0 for a root.
    pub parent: u64,
    /// Operation kind.
    pub kind: SpanKind,
    /// Node that opened the span.
    pub node: usize,
    /// Resource the span is about.
    pub resource: SpanResource,
    /// Open time.
    pub open: VirtualTime,
    /// Close time (meaningful only when `closed`).
    pub close: VirtualTime,
    /// Whether the span has closed.
    pub closed: bool,
    /// Message deliveries attributed to this span, in delivery order.
    pub hops: Vec<Hop>,
    /// Protocol-declared hop count (2 or 3 for lock acquires, retry
    /// count for retransmit spans, 0 otherwise).
    pub hop_count: u32,
}

impl SpanRecord {
    /// End-to-end duration in nanoseconds (0 while open).
    pub fn duration_ns(&self) -> u64 {
        if self.closed {
            self.close.as_ns().saturating_sub(self.open.as_ns())
        } else {
            0
        }
    }

    /// Critical-path segment attribution: walks the hops backward from
    /// the close, greedily picking the hop with the latest service
    /// completion not after the current frontier, then jumping to that
    /// hop's send time. The chain's hops never overlap, so the summed
    /// wire/handler/backoff never exceed the duration and the residual
    /// protocol-wait is non-negative — the four parts sum to the
    /// duration exactly.
    pub fn segments(&self) -> Segments {
        let open = self.open.as_ns();
        let dur = self.duration_ns();
        let close = open + dur;
        let mut seg = Segments::default();
        if !self.closed {
            return seg;
        }
        let mut used = vec![false; self.hops.len()];
        let mut cur = close;
        while cur > open {
            let pick = self
                .hops
                .iter()
                .enumerate()
                .filter(|(i, h)| {
                    !used[*i] && h.serviced.as_ns() <= cur && h.serviced.as_ns() > open
                })
                .max_by_key(|(i, h)| (h.serviced.as_ns(), *i));
            let Some((i, h)) = pick else { break };
            used[i] = true;
            let sent = h.sent.as_ns().max(open);
            let serviced = h.serviced.as_ns().min(cur);
            let tx = h.tx.as_ns().clamp(sent, serviced);
            let arrived = h.arrived.as_ns().clamp(tx, serviced);
            seg.backoff += tx - sent;
            seg.wire += arrived - tx;
            seg.handler += serviced - arrived;
            cur = sent;
        }
        seg.protocol_wait = dur - (seg.wire + seg.handler + seg.backoff);
        seg
    }

    fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("id", self.id);
        o.set("parent", self.parent);
        o.set("kind", self.kind.name());
        o.set("node", self.node as u64);
        o.set("resource", self.resource.label().as_str());
        o.set("open_ns", self.open.as_ns());
        o.set("close_ns", if self.closed { self.close.as_ns() } else { 0 });
        o.set("closed", self.closed);
        o.set("duration_ns", self.duration_ns());
        o.set("hop_count", u64::from(self.hop_count));
        o.set("segments", self.segments().to_json());
        let mut hops = JsonValue::array();
        for h in &self.hops {
            let mut row = JsonValue::object();
            row.set("src", h.src as u64);
            row.set("dst", h.dst as u64);
            row.set("kind", format!("{}", h.kind).as_str());
            row.set("sent_ns", h.sent.as_ns());
            row.set("tx_ns", h.tx.as_ns());
            row.set("arrived_ns", h.arrived.as_ns());
            row.set("serviced_ns", h.serviced.as_ns());
            row.set("retries", u64::from(h.retries));
            hops.push(row);
        }
        o.set("hops", hops);
        o
    }
}

/// The whole-run critical path: a backward partition of the measured
/// wall time into span-covered intervals (attributed to the innermost
/// covering span's kind) and uncovered compute time. Covered plus
/// compute equals the wall time by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Wall time partitioned (ns).
    pub total: u64,
    /// Time no span covers: local compute and scheduling.
    pub compute: u64,
    /// Covered time per span kind, in [`SpanKind::ALL`] order (zero
    /// entries retained for byte-stable serialization).
    pub by_kind: Vec<(SpanKind, u64)>,
}

impl CriticalPath {
    /// Covered + compute (equals `total`).
    pub fn reconstructed(&self) -> u64 {
        self.compute + self.by_kind.iter().map(|(_, ns)| ns).sum::<u64>()
    }

    fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("total_ns", self.total);
        o.set("compute_ns", self.compute);
        let mut kinds = JsonValue::object();
        for &(k, ns) in &self.by_kind {
            kinds.set(k.name(), ns);
        }
        o.set("kinds", kinds);
        o
    }
}

/// The run's span forest: append-only span storage with id lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanForest {
    enabled: bool,
    next_id: u64,
    spans: Vec<SpanRecord>,
    index: HashMap<u64, usize>,
}

impl SpanForest {
    /// Creates a forest; a disabled forest ignores every operation.
    pub fn new(enabled: bool) -> Self {
        SpanForest {
            enabled,
            next_id: 1,
            spans: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span and returns its id (0 when disabled).
    pub fn open(
        &mut self,
        kind: SpanKind,
        node: usize,
        resource: SpanResource,
        parent: u64,
        at: VirtualTime,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.index.insert(id, self.spans.len());
        self.spans.push(SpanRecord {
            id,
            parent,
            kind,
            node,
            resource,
            open: at,
            close: VirtualTime::ZERO,
            closed: false,
            hops: Vec::new(),
            hop_count: 0,
        });
        id
    }

    /// Closes span `id` at `at` (no-op for 0, unknown or already-closed
    /// ids, so protocol sites can call it unconditionally). Clamped to
    /// the open time: node clocks diverge, so a master-side release
    /// stamp can precede a fast node's open.
    pub fn close(&mut self, id: u64, at: VirtualTime) {
        if let Some(s) = self.get_mut(id) {
            if !s.closed {
                s.closed = true;
                s.close = at.max(s.open);
            }
        }
    }

    /// Sets the protocol-declared hop count (e.g. 2-hop vs 3-hop lock).
    pub fn set_hop_count(&mut self, id: u64, hops: u32) {
        if let Some(s) = self.get_mut(id) {
            s.hop_count = hops;
        }
    }

    /// Records a delivered message's hop into span `id`, and — when the
    /// delivery needed retransmission — synthesizes a closed
    /// [`SpanKind::Retransmit`] child covering the backoff interval, so
    /// retransmission bursts are first-class nodes of the forest.
    pub fn record_hop(&mut self, id: u64, src: usize, dst: usize, kind: MsgKind, d: DeliveryInfo) {
        if !self.enabled || id == 0 {
            return;
        }
        let hop = Hop {
            src,
            dst,
            kind,
            sent: d.sent_at,
            tx: d.tx_at,
            arrived: d.arrived_at,
            serviced: d.serviced_at,
            retries: d.retries,
        };
        let Some(s) = self.get_mut(id) else { return };
        s.hops.push(hop);
        if d.retries > 0 {
            let rid = self.open(SpanKind::Retransmit, src, SpanResource::None, id, d.sent_at);
            self.set_hop_count(rid, d.retries);
            self.close(rid, d.tx_at);
        }
    }

    /// The span with id `id`, if any.
    pub fn get(&self, id: u64) -> Option<&SpanRecord> {
        self.index.get(&id).map(|&i| &self.spans[i])
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut SpanRecord> {
        let i = *self.index.get(&id)?;
        Some(&mut self.spans[i])
    }

    /// All spans in open order.
    pub fn iter(&self) -> std::slice::Iter<'_, SpanRecord> {
        self.spans.iter()
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans still open (a finished healthy run has none; a degraded
    /// run may leave the spans of abandoned messages open).
    pub fn open_count(&self) -> usize {
        self.spans.iter().filter(|s| !s.closed).count()
    }

    /// Clears all spans and restarts id allocation (used at
    /// `startup_done`, mirroring the stats/trace reset).
    pub fn reset(&mut self) {
        self.next_id = 1;
        self.spans.clear();
        self.index.clear();
    }

    /// Per-kind duration histograms over closed spans.
    pub fn aggregates(&self) -> Vec<(SpanKind, Log2Hist)> {
        let mut by_kind: Vec<(SpanKind, Log2Hist)> = SpanKind::ALL
            .iter()
            .map(|&k| (k, Log2Hist::new()))
            .collect();
        for s in &self.spans {
            if s.closed {
                let slot = by_kind.iter_mut().find(|(k, _)| *k == s.kind);
                slot.expect("ALL covers every kind")
                    .1
                    .record(s.duration_ns());
            }
        }
        by_kind
    }

    /// Whole-run critical path over `[0, total]`: a time sweep over the
    /// closed spans' intervals. Each instant covered by at least one
    /// span is attributed to the *innermost* covering span (latest
    /// open, ties to the latest id); uncovered time is compute. The
    /// parts sum to `total` exactly.
    pub fn critical_path(&self, total: VirtualTime) -> CriticalPath {
        let total = total.as_ns();
        let mut events: Vec<(u64, bool, u64, usize)> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            if !s.closed {
                continue;
            }
            let open = s.open.as_ns().min(total);
            let close = s.close.as_ns().min(total);
            if close > open {
                events.push((open, true, s.open.as_ns(), i));
                events.push((close, false, s.open.as_ns(), i));
            }
        }
        // Stable order: time, then closes before opens at the same
        // instant (a span ending exactly where another begins never
        // yields a zero-width active interval).
        events.sort_by_key(|&(t, is_open, _, i)| (t, is_open, i));
        let mut by_kind: Vec<(SpanKind, u64)> = SpanKind::ALL.iter().map(|&k| (k, 0)).collect();
        let mut active: BTreeSet<(u64, usize)> = BTreeSet::new();
        let mut compute = 0u64;
        let mut cursor = 0u64;
        let mut attribute = |active: &BTreeSet<(u64, usize)>, from: u64, to: u64| {
            if to <= from {
                return 0u64;
            }
            let width = to - from;
            match active.iter().next_back() {
                Some(&(_, i)) => {
                    let kind = self.spans[i].kind;
                    let slot = by_kind.iter_mut().find(|(k, _)| *k == kind);
                    slot.expect("ALL covers every kind").1 += width;
                    0
                }
                None => width,
            }
        };
        for (t, is_open, open_ns, i) in events {
            compute += attribute(&active, cursor, t);
            cursor = t.max(cursor);
            if is_open {
                active.insert((open_ns, i));
            } else {
                active.remove(&(open_ns, i));
            }
        }
        compute += attribute(&active, cursor, total);
        CriticalPath {
            total,
            compute,
            by_kind,
        }
    }

    /// Serializes the forest: per-kind aggregates (count, p50/p99/p999,
    /// max, total), the whole-run critical path and the full records
    /// (what `cvm explain` consumes).
    pub fn to_json(&self, total: VirtualTime) -> JsonValue {
        let mut o = self.summary_json(total);
        let mut records = JsonValue::array();
        for s in &self.spans {
            records.push(s.to_json());
        }
        o.set("records", records);
        o
    }

    /// The records-free summary (aggregates + critical path): what the
    /// benchmark pipeline folds into `BENCH_obs.json`, where the full
    /// per-span records would dwarf the baseline artifact.
    pub fn summary_json(&self, total: VirtualTime) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("count", self.spans.len() as u64);
        o.set("open", self.open_count() as u64);
        let mut agg = JsonValue::array();
        for (k, h) in self.aggregates() {
            let mut row = JsonValue::object();
            row.set("kind", k.name());
            row.set("count", h.count());
            row.set("p50_ns", h.p50());
            row.set("p99_ns", h.p99());
            row.set("p999_ns", h.p999());
            row.set("max_ns", h.max());
            row.set("total_ns", h.sum());
            agg.push(row);
        }
        o.set("agg", agg);
        o.set("critical_path", self.critical_path(total).to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(us: u64) -> VirtualTime {
        VirtualTime::from_us(us)
    }

    fn hop(sent: u64, tx: u64, arrived: u64, serviced: u64, retries: u32) -> DeliveryInfo {
        DeliveryInfo {
            sent_at: vt(sent),
            tx_at: vt(tx),
            arrived_at: vt(arrived),
            serviced_at: vt(serviced),
            retries,
        }
    }

    #[test]
    fn disabled_forest_is_free() {
        let mut f = SpanForest::new(false);
        let id = f.open(SpanKind::RemoteFault, 0, SpanResource::Page(1), 0, vt(1));
        assert_eq!(id, 0);
        f.record_hop(id, 0, 1, MsgKind::PageRequest, hop(1, 1, 2, 3, 0));
        f.close(id, vt(5));
        assert!(f.is_empty());
    }

    #[test]
    fn segments_sum_exactly_to_duration() {
        let mut f = SpanForest::new(true);
        let id = f.open(SpanKind::LockAcquire, 0, SpanResource::Lock(3), 0, vt(100));
        // Request 0→1 (retransmitted once), forward 1→2, grant 2→0 with
        // a protocol wait before the grant leaves.
        f.record_hop(id, 0, 1, MsgKind::LockRequest, hop(100, 150, 160, 170, 1));
        f.record_hop(id, 1, 2, MsgKind::LockForward, hop(170, 170, 180, 185, 0));
        f.record_hop(id, 2, 0, MsgKind::LockGrant, hop(300, 300, 315, 320, 0));
        f.close(id, vt(320));
        let s = f.get(id).unwrap();
        let seg = s.segments();
        assert_eq!(seg.total(), s.duration_ns());
        let us = 1_000u64; // ns per µs
        assert_eq!(seg.backoff, 50 * us, "request retransmit backoff");
        assert_eq!(seg.wire, (10 + 10 + 15) * us);
        assert_eq!(seg.handler, (10 + 5 + 5) * us);
        assert_eq!(seg.protocol_wait, (300 - 185) * us);
        // The retransmitted hop synthesized a child span.
        let retrans: Vec<_> = f
            .iter()
            .filter(|s| s.kind == SpanKind::Retransmit)
            .collect();
        assert_eq!(retrans.len(), 1);
        assert_eq!(retrans[0].parent, id);
        assert_eq!(retrans[0].duration_ns(), 50 * us);
        assert_eq!(retrans[0].hop_count, 1);
    }

    #[test]
    fn overlapping_hops_never_overcount() {
        let mut f = SpanForest::new(true);
        let id = f.open(SpanKind::RemoteFault, 0, SpanResource::Page(9), 0, vt(0));
        // Two replies overlap in time; the chain must not double-count.
        f.record_hop(id, 1, 0, MsgKind::DiffReply, hop(10, 10, 30, 40, 0));
        f.record_hop(id, 2, 0, MsgKind::DiffReply, hop(12, 12, 32, 44, 0));
        f.close(id, vt(44));
        let s = f.get(id).unwrap();
        let seg = s.segments();
        assert_eq!(seg.total(), s.duration_ns());
        assert!(seg.wire + seg.handler <= s.duration_ns());
    }

    #[test]
    fn critical_path_partitions_wall_time() {
        let mut f = SpanForest::new(true);
        let a = f.open(SpanKind::RemoteFault, 0, SpanResource::Page(1), 0, vt(10));
        let b = f.open(SpanKind::PagePull, 0, SpanResource::Page(1), a, vt(12));
        f.close(b, vt(20));
        f.close(a, vt(30));
        let c = f.open(SpanKind::Barrier, 1, SpanResource::Barrier(0), 0, vt(25));
        f.close(c, vt(50));
        let cp = f.critical_path(vt(100));
        assert_eq!(cp.reconstructed(), cp.total);
        let ns = |k: SpanKind| cp.by_kind.iter().find(|(x, _)| *x == k).unwrap().1;
        // [10,12) fault, [12,20) pull (innermost), [20,30) fault again
        // but [25,30) goes to the barrier (opened later), [30,50) barrier.
        assert_eq!(ns(SpanKind::PagePull), 8_000);
        assert_eq!(ns(SpanKind::RemoteFault), (2 + 5) * 1_000);
        assert_eq!(ns(SpanKind::Barrier), 25_000);
        assert_eq!(cp.compute, (10 + 50) * 1_000);
    }

    #[test]
    fn reset_restarts_ids() {
        let mut f = SpanForest::new(true);
        let first = f.open(SpanKind::Reduce, 0, SpanResource::None, 0, vt(0));
        assert_eq!(first, 1);
        f.reset();
        assert!(f.is_empty());
        let again = f.open(SpanKind::Reduce, 0, SpanResource::None, 0, vt(0));
        assert_eq!(again, 1, "ids restart after reset for determinism");
    }

    #[test]
    fn aggregates_and_json_cover_all_kinds() {
        let mut f = SpanForest::new(true);
        let id = f.open(SpanKind::Barrier, 0, SpanResource::Barrier(1), 0, vt(0));
        f.close(id, vt(100));
        let agg = f.aggregates();
        assert_eq!(agg.len(), SpanKind::ALL.len());
        let barrier = agg.iter().find(|(k, _)| *k == SpanKind::Barrier).unwrap();
        assert_eq!(barrier.1.count(), 1);
        let j = f.to_json(vt(100));
        assert_eq!(j.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(
            j.get("agg").unwrap().as_array().unwrap().len(),
            SpanKind::ALL.len()
        );
        let cp = j.get("critical_path").unwrap();
        assert_eq!(cp.get("total_ns").unwrap().as_u64(), Some(100_000));
    }
}
