//! `cvm-dsm` — a CVM-style software distributed shared memory with
//! per-node multi-threading for remote-latency hiding.
//!
//! This crate reproduces the system of *"Multi-threading and Remote Latency
//! in Software DSMs"* (Thitikamol & Keleher, ICDCS 1997): a page-based DSM
//! running **lazy release consistency** with a **multiple-writer** protocol
//! (twins + diffs + write notices + vector timestamps), distributed locks
//! with *local per-lock queues*, global barriers with *per-node arrival
//! aggregation*, *local barriers* for reduction aggregation, and a
//! **non-preemptive per-node thread scheduler** that switches threads when
//! a remote request is sent — hiding remote memory and synchronization
//! latency behind useful local work.
//!
//! The cluster itself (network, page-fault detection, caches) is simulated
//! deterministically; see the workspace `DESIGN.md` for the substitution
//! argument. All of the paper's observables are collected: message counts
//! and bandwidth by class, non-overlapped wait times by cause, thread
//! switches, remote faults/locks, outstanding-request overlap,
//! blocked-on-same-page/lock counts, diffs created/used, and cache/TLB
//! misses.
//!
//! # Quickstart
//!
//! ```
//! use cvm_dsm::{CvmBuilder, CvmConfig};
//!
//! let mut builder = CvmBuilder::new(CvmConfig::small(2, 2));
//! let data = builder.alloc::<f64>(1024);
//! let report = builder.run(move |ctx| {
//!     // SPMD body: every thread executes this closure.
//!     if ctx.global_id() == 0 {
//!         for i in 0..1024 {
//!             data.write(ctx, i, 0.0);
//!         }
//!     }
//!     ctx.startup_done();
//!     let (lo, hi) = ctx.partition(1024);
//!     for i in lo..hi {
//!         data.write(ctx, i, i as f64);
//!     }
//!     ctx.barrier();
//!     // Every thread can now read every element.
//!     let sum: f64 = (0..1024).map(|i| data.read(ctx, i)).sum();
//!     assert_eq!(sum, (0..1024).map(|i| i as f64).sum::<f64>());
//! });
//! assert_eq!(report.stats.barriers_crossed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod attr;
pub mod barrier;
pub mod config;
pub mod ctx;
pub mod diff;
pub mod driver;
pub mod export;
pub mod hist;
pub mod interval;
pub mod lock;
pub mod msg;
pub mod node;
pub mod oracle;
pub mod page;
pub mod protocol;
pub mod report;
pub mod sched;
pub mod shared;
pub mod span;
pub mod stats;
pub mod trace;

pub use attr::{LockAttr, PageAttr, ResourceAttr};
pub use config::CvmConfig;
pub use ctx::{ReduceOp, ThreadCtx};
pub use cvm_net::{FaultPlan, LatencyModel, PLAN_CATALOG};
pub use diff::Diff;
pub use driver::{Coherence, CvmBuilder};
pub use export::{chrome_trace, chrome_trace_with_spans};
pub use hist::{hist_json, DsmHistograms};
pub use interval::VectorTime;
pub use oracle::{Finding, FindingSink, InjectFault, Invariant, Oracle};
pub use page::{Addr, PageId, PageState};
pub use protocol::ProtocolKind;
pub use report::{MemPeaks, NodeBreakdown, RunReport};
pub use shared::{Shareable, SharedMat, SharedVec};
pub use span::{SpanForest, SpanKind, SpanRecord, SpanResource};
pub use stats::DsmStats;
pub use trace::Trace;
