//! Intervals, vector timestamps and write notices — the bookkeeping of
//! lazy release consistency.
//!
//! Each node's execution is divided into *intervals*; a new interval begins
//! (potentially) at each synchronization operation. Intervals across nodes
//! are partially ordered by *vector timestamps*. When node `p` acquires a
//! lock last released by node `q`, `q` piggybacks *write notices* for every
//! interval named in `q`'s vector timestamp but not in the timestamp `p`
//! sent with its request; `p` invalidates the named pages. Barriers
//! exchange notices all-to-all through the barrier master.

use std::fmt;

use crate::page::PageId;

/// A vector timestamp: `vt[q]` is the index of the latest interval of node
/// `q` whose modifications this node has seen.
///
/// # Example
///
/// ```
/// use cvm_dsm::VectorTime;
/// let mut a = VectorTime::new(3);
/// let mut b = VectorTime::new(3);
/// a.advance(0, 2);
/// b.advance(1, 1);
/// assert!(!a.covers(&b) && !b.covers(&a)); // concurrent
/// a.merge(&b);
/// assert!(a.covers(&b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorTime {
    entries: Vec<u32>,
}

impl VectorTime {
    /// The zero timestamp for a system of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        VectorTime {
            entries: vec![0; nodes],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the system has no nodes (never for constructed timestamps).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The latest seen interval of node `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn get(&self, q: usize) -> u32 {
        self.entries[q]
    }

    /// Records that intervals of node `q` up to `interval` have been seen.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn advance(&mut self, q: usize, interval: u32) {
        let e = &mut self.entries[q];
        *e = (*e).max(interval);
    }

    /// Componentwise maximum.
    ///
    /// # Panics
    ///
    /// Panics if the two timestamps have different lengths.
    pub fn merge(&mut self, other: &VectorTime) {
        assert_eq!(self.len(), other.len(), "mismatched vector lengths");
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a = (*a).max(*b);
        }
    }

    /// True if `self` has seen everything `other` has (componentwise ≥).
    ///
    /// # Panics
    ///
    /// Panics if the two timestamps have different lengths.
    pub fn covers(&self, other: &VectorTime) -> bool {
        assert_eq!(self.len(), other.len(), "mismatched vector lengths");
        self.entries.iter().zip(&other.entries).all(|(a, b)| a >= b)
    }

    /// Strict domination: `self` covers `other` and differs somewhere.
    /// Antisymmetric by construction: at most one of `a.dominates(&b)`,
    /// `b.dominates(&a)` holds; both false means equal or incomparable
    /// (concurrent).
    ///
    /// # Panics
    ///
    /// Panics if the two timestamps have different lengths.
    pub fn dominates(&self, other: &VectorTime) -> bool {
        self.covers(other) && self != other
    }

    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        4 * self.entries.len()
    }
}

impl fmt::Display for VectorTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

/// A write notice: node `writer` modified `page` during `interval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteNotice {
    /// The modifying node.
    pub writer: usize,
    /// The writer's interval index.
    pub interval: u32,
    /// The modified page.
    pub page: PageId,
}

impl WriteNotice {
    /// Approximate wire size of one notice.
    pub const WIRE_BYTES: usize = 8;
}

/// One node's log of its own closed intervals, used to compute the notices
/// a lock grant or barrier must carry.
#[derive(Debug, Clone, Default)]
pub struct IntervalLog {
    // intervals[i] = pages dirtied in closed interval i+1 (interval 0 is
    // the pre-startup epoch and carries no notices).
    intervals: Vec<Vec<PageId>>,
}

impl IntervalLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the most recently closed interval (0 if none).
    pub fn latest(&self) -> u32 {
        self.intervals.len() as u32
    }

    /// Closes the current interval with the given dirty page set and
    /// returns its index. Empty intervals are legal and cheap.
    pub fn close(&mut self, dirty: Vec<PageId>) -> u32 {
        self.intervals.push(dirty);
        self.intervals.len() as u32
    }

    /// Pages dirtied in closed interval `interval` (1-based), or `None`
    /// if that interval has not closed yet.
    pub fn pages_of(&self, interval: u32) -> Option<&[PageId]> {
        if interval == 0 {
            return None;
        }
        self.intervals.get(interval as usize - 1).map(Vec::as_slice)
    }

    /// Write notices for this node's intervals in `(since, upto]`.
    ///
    /// `writer` is this node's id, stamped into the notices.
    pub fn notices_between(&self, writer: usize, since: u32, upto: u32) -> Vec<WriteNotice> {
        let mut out = Vec::new();
        let lo = since as usize;
        let hi = (upto as usize).min(self.intervals.len());
        for (idx, pages) in self.intervals.iter().enumerate().take(hi).skip(lo) {
            for &page in pages {
                out.push(WriteNotice {
                    writer,
                    interval: idx as u32 + 1,
                    page,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_lub() {
        let mut a = VectorTime::new(4);
        let mut b = VectorTime::new(4);
        a.advance(0, 5);
        a.advance(2, 1);
        b.advance(0, 3);
        b.advance(3, 7);
        let mut m = a.clone();
        m.merge(&b);
        assert!(m.covers(&a) && m.covers(&b));
        assert_eq!(m.get(0), 5);
        assert_eq!(m.get(3), 7);
    }

    #[test]
    fn covers_is_partial_order() {
        let mut a = VectorTime::new(2);
        let b = VectorTime::new(2);
        assert!(a.covers(&b) && b.covers(&a)); // equal
        a.advance(0, 1);
        assert!(a.covers(&b) && !b.covers(&a));
    }

    #[test]
    fn advance_is_monotonic() {
        let mut a = VectorTime::new(1);
        a.advance(0, 5);
        a.advance(0, 3); // must not regress
        assert_eq!(a.get(0), 5);
    }

    #[test]
    fn interval_log_notice_ranges() {
        let mut log = IntervalLog::new();
        assert_eq!(log.latest(), 0);
        let i1 = log.close(vec![PageId(1), PageId(2)]);
        let i2 = log.close(vec![PageId(3)]);
        assert_eq!((i1, i2), (1, 2));
        let all = log.notices_between(7, 0, 2);
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|n| n.writer == 7));
        let tail = log.notices_between(7, 1, 2);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].page, PageId(3));
        assert_eq!(tail[0].interval, 2);
        assert!(log.notices_between(7, 2, 2).is_empty());
    }

    #[test]
    fn dominates_is_strict_and_antisymmetric() {
        let mut a = VectorTime::new(2);
        let b = VectorTime::new(2);
        assert!(!a.dominates(&b) && !b.dominates(&a), "equal dominates none");
        a.advance(0, 1);
        assert!(a.dominates(&b) && !b.dominates(&a));
        let mut c = VectorTime::new(2);
        c.advance(1, 1);
        assert!(!a.dominates(&c) && !c.dominates(&a), "concurrent");
    }

    #[test]
    fn pages_of_is_one_based() {
        let mut log = IntervalLog::new();
        assert_eq!(log.pages_of(0), None, "interval 0 is the startup epoch");
        assert_eq!(log.pages_of(1), None, "not closed yet");
        log.close(vec![PageId(4)]);
        assert_eq!(log.pages_of(1), Some(&[PageId(4)][..]));
        assert_eq!(log.pages_of(2), None);
    }

    #[test]
    fn notices_clamp_to_log_end() {
        let mut log = IntervalLog::new();
        log.close(vec![PageId(0)]);
        // Asking beyond the log must not panic.
        assert_eq!(log.notices_between(0, 0, 99).len(), 1);
    }
}
