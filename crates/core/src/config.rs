//! System configuration.

use cvm_memsim::MemConfig;
use cvm_net::{FaultPlan, LatencyModel, LossConfig};
use cvm_sim::{ExploreSpec, ScheduleScript, SimDuration};

use crate::oracle::{FindingSink, InjectFault};
use crate::protocol::ProtocolKind;

/// Complete configuration of a CVM run.
///
/// The defaults reproduce the paper's environment: 8 KB coherence pages,
/// the Alpha/ATM latency constants, an 8 µs thread switch, and the SP-2
/// memory-system geometry used for Figure 2.
#[derive(Debug, Clone)]
pub struct CvmConfig {
    /// Number of nodes (physical processors). The paper uses 4, 8 and a
    /// virtualized 16.
    pub nodes: usize,
    /// Application threads per node (the paper's multi-threading level,
    /// 1–4).
    pub threads_per_node: usize,
    /// Coherence page size in bytes (8 KB on the Alphas; the SP-2 runs were
    /// forced to the same value).
    pub page_size: usize,
    /// Total shared segment size in bytes; must be a multiple of
    /// `page_size`. Usually set by [`CvmBuilder`](crate::CvmBuilder)
    /// allocation.
    pub segment_size: usize,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Cost of one user-level thread switch (8 µs in the paper).
    pub thread_switch: SimDuration,
    /// Cost of an `mprotect` call (49 µs).
    pub mprotect: SimDuration,
    /// Cost of user-level SIGSEGV handling (98 µs).
    pub signal: SimDuration,
    /// Cost of copying one page to create a twin.
    pub twin_copy: SimDuration,
    /// Cost per 8-byte word compared when creating a diff.
    pub diff_word_create: SimDuration,
    /// Cost per 8-byte word applied from a diff.
    pub diff_word_apply: SimDuration,
    /// Base virtual-time cost of one shared-memory access (instruction +
    /// L1 hit), excluding simulated cache/TLB penalties.
    pub access_base: SimDuration,
    /// Whether to run the cache/TLB simulators (Figure 2). Off by default:
    /// they roughly double simulation time.
    pub memsim_enabled: bool,
    /// Memory-system geometry when `memsim_enabled`.
    pub mem: MemConfig,
    /// Instruction pages in one thread's *active code window* (feeds the
    /// I-TLB model): each thread executes a different phase of the shared
    /// code at any instant, so interleaving more threads enlarges the hot
    /// instruction footprint past the I-TLB capacity.
    pub code_pages: usize,
    /// Which coherence protocol to run (the paper's lazy multi-writer by
    /// default; CVM is a protocol-experimentation platform and ships an
    /// eager-update alternative for comparison).
    pub protocol: ProtocolKind,
    /// Aggregate barrier arrivals per node (the paper's multi-threading
    /// modification: all but the last local thread switch out and the last
    /// sends a single per-node arrival). Disable for the ablation: every
    /// thread then sends its own arrival and receives its own release.
    pub aggregate_barriers: bool,
    /// Schedule ready threads most-recently-readied first (closer to
    /// LIFO). The paper notes a "memory-system aware thread scheduler
    /// would use an approach closer to LIFO than FIFO. Our scheduler does
    /// not make this optimization" — this flag adds it, trading fairness
    /// for cache/TLB locality (see the `ablation` harness and benches).
    pub lifo_schedule: bool,
    /// Lock releases prefer local queue inhabitants over remote waiters
    /// (the paper's unfair-but-fast policy). Disable for the ablation:
    /// remote waiters are served first and the node re-requests the lock
    /// for its remaining local waiters.
    pub prefer_local_lock_waiters: bool,
    /// Maximum consecutive local lock hand-offs past a *parked remote
    /// waiter* before the waiter is served despite
    /// `prefer_local_lock_waiters`. `0` (the default) reproduces the
    /// paper's unbounded policy — "neither fair nor guaranteed to make
    /// progress" — which can starve remote acquires indefinitely under
    /// sustained open-loop load; serving scenarios set a small cap.
    pub local_grant_cap: u32,
    /// Uniform random extra wire delay in `[0, jitter_max)` per message
    /// (zero disables). Models the timing perturbation the paper lists as
    /// its fourth limiting factor; deterministic per seed.
    pub jitter_max: SimDuration,
    /// Packet-loss injection (None = reliable wire). When set, messages
    /// travel over the acknowledgement/retransmission layer — CVM's
    /// "efficient, end-to-end protocols built on top of UDP".
    pub loss: Option<LossConfig>,
    /// Deterministic fault plan layered over every transmission: per-link
    /// loss, duplication, reordering, corruption drops, node stalls,
    /// transient partitions. A non-empty plan implies the reliability
    /// layer (a default adaptive [`LossConfig`] is enabled if `loss` is
    /// `None`). Seeded independently, so `None` and `Some(empty)` produce
    /// identical runs.
    pub faults: Option<FaultPlan>,
    /// Protocol-trace capacity in events (0 disables tracing). The trace
    /// is returned on the run report.
    pub trace_capacity: usize,
    /// Record the causal span forest (see [`crate::span`]). Off by
    /// default: span bookkeeping is pure observation — it never touches
    /// modelled time — but costs host memory and report size.
    pub spans: bool,
    /// Master seed for all deterministic randomness.
    pub seed: u64,
    /// Run the online invariant oracle: violations are recorded as
    /// [`Finding`](crate::Finding)s into `verify_sink` (and onto the run
    /// report) instead of panicking, and extra protocol checks — notice
    /// coverage at merges, twin/diff round trips, diff apply order,
    /// pending-implies-invalid — are enabled.
    pub verify: bool,
    /// Shared sink the oracle records into. Keep a clone to read findings
    /// out even when the application itself panics on corrupted state.
    pub verify_sink: FindingSink,
    /// Deliberate protocol mutation for oracle self-tests (None = faithful
    /// protocol).
    pub inject: Option<InjectFault>,
    /// Perturb scheduler pick decisions with this seeded schedule (the
    /// schedule-exploration checker). None runs the configured FIFO/LIFO
    /// policy unmodified.
    pub explore: Option<ExploreSpec>,
    /// Replay scheduler picks from a fixed script (the stateless model
    /// checker, `cvm check --dpor`): entry `i` indexes the ready queue
    /// at the `i`-th scheduling point; past the script the configured
    /// policy resumes. Takes precedence over `explore`.
    pub script: Option<ScheduleScript>,
    /// Record every scheduling point (enabled set, chosen index, burst
    /// page/sync footprint) onto the run report's step log and fingerprint
    /// the terminal protocol state — the observation channel the DPOR
    /// explorer's independence relation and duplicate detection consume.
    pub record_steps: bool,
    /// Shards of the parallel event core: nodes are partitioned across
    /// this many shards, and the driver overlaps application bursts of
    /// different shards inside conservative lookahead windows bounded by
    /// the latency model's floor. `1` (the default) is the classic
    /// sequential loop; any value produces **byte-identical reports** —
    /// sharding changes wall-clock time only, never simulated behaviour.
    pub shards: usize,
}

impl CvmConfig {
    /// The paper's environment with `nodes` × `threads_per_node` threads.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `threads_per_node` is zero.
    pub fn paper(nodes: usize, threads_per_node: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(threads_per_node > 0, "need at least one thread per node");
        CvmConfig {
            nodes,
            threads_per_node,
            page_size: 8192,
            segment_size: 0,
            latency: LatencyModel::paper(),
            thread_switch: SimDuration::from_us(8),
            mprotect: SimDuration::from_us(49),
            signal: SimDuration::from_us(98),
            twin_copy: SimDuration::from_us(30),
            diff_word_create: SimDuration::from_ns(15),
            diff_word_apply: SimDuration::from_ns(15),
            access_base: SimDuration::from_ns(25),
            memsim_enabled: false,
            mem: MemConfig::sp2(),
            code_pages: 20,
            protocol: ProtocolKind::LazyMultiWriter,
            aggregate_barriers: true,
            lifo_schedule: false,
            prefer_local_lock_waiters: true,
            local_grant_cap: 0,
            jitter_max: SimDuration::ZERO,
            loss: None,
            faults: None,
            trace_capacity: 0,
            spans: false,
            seed: 0x5EED_CAFE,
            verify: false,
            verify_sink: FindingSink::new(),
            inject: None,
            explore: None,
            script: None,
            record_steps: false,
            shards: 1,
        }
    }

    /// A small fast configuration for tests and examples: paper semantics,
    /// idealised (microsecond) network.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `threads_per_node` is zero.
    pub fn small(nodes: usize, threads_per_node: usize) -> Self {
        let mut c = Self::paper(nodes, threads_per_node);
        c.latency = LatencyModel::instant();
        c.thread_switch = SimDuration::from_ns(100);
        c.mprotect = SimDuration::ZERO;
        c.signal = SimDuration::ZERO;
        c.twin_copy = SimDuration::ZERO;
        c
    }

    /// Total number of application threads in the system.
    pub fn total_threads(&self) -> usize {
        self.nodes * self.threads_per_node
    }

    /// Number of pages in the shared segment.
    pub fn pages(&self) -> usize {
        self.segment_size / self.page_size
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the segment size is not page-aligned or the page size is
    /// not a power of two.
    pub fn validate(&self) {
        assert!(self.nodes > 0 && self.threads_per_node > 0);
        assert!(self.page_size.is_power_of_two(), "page size power of two");
        assert!(
            self.segment_size.is_multiple_of(self.page_size),
            "segment must be page aligned"
        );
        assert!(self.shards > 0, "shard count must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_1() {
        let c = CvmConfig::paper(8, 4);
        assert_eq!(c.page_size, 8192);
        assert_eq!(c.thread_switch, SimDuration::from_us(8));
        assert_eq!(c.mprotect, SimDuration::from_us(49));
        assert_eq!(c.signal, SimDuration::from_us(98));
        assert_eq!(c.total_threads(), 32);
    }

    #[test]
    fn small_is_fast_but_same_shape() {
        let c = CvmConfig::small(2, 2);
        assert_eq!(c.page_size, 8192);
        assert!(c.latency.fixed < LatencyModel::paper().fixed);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = CvmConfig::paper(0, 1);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_segment_rejected() {
        let mut c = CvmConfig::small(1, 1);
        c.segment_size = 100;
        c.validate();
    }
}
