//! Shared-segment addressing and the per-page protection state machine.
//!
//! Real CVM controls access with `mprotect` and catches `SIGSEGV`; here the
//! same state machine is driven by the instrumented access path in
//! [`ctx`](crate::ctx). The states mirror hardware protection:
//!
//! * [`PageState::Unmapped`] — the node has never held a copy (first access
//!   needs a full page fetch).
//! * [`PageState::Invalid`] — the node holds a (stale) copy but write
//!   notices have invalidated it; a fault fetches only diffs.
//! * [`PageState::ReadOnly`] — reads proceed; the first write takes a
//!   *local* fault that creates a twin and upgrades protection.
//! * [`PageState::ReadWrite`] — all accesses proceed at full speed.

use std::fmt;

/// Byte offset into the shared segment.
///
/// # Example
///
/// ```
/// use cvm_dsm::Addr;
/// let a = Addr(16384);
/// assert_eq!(a.page(8192).0, 2);
/// assert_eq!(a.page_offset(8192), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The page containing this address.
    pub fn page(self, page_size: usize) -> PageId {
        PageId((self.0 / page_size as u64) as usize)
    }

    /// Offset within the containing page.
    pub fn page_offset(self, page_size: usize) -> usize {
        (self.0 % page_size as u64) as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

/// Index of an 8 KB coherence page in the shared segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub usize);

impl PageId {
    /// First byte address of this page.
    pub fn base(self, page_size: usize) -> Addr {
        Addr(self.0 as u64 * page_size as u64)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Protection state of one page on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageState {
    /// No copy has ever been resident on this node.
    #[default]
    Unmapped,
    /// A copy is resident but invalidated by write notices.
    Invalid,
    /// Valid for reading; writes fault locally (twin creation).
    ReadOnly,
    /// Valid for reading and writing; a twin exists if the page is dirty.
    ReadWrite,
}

impl PageState {
    /// True if a read may proceed without a fault.
    pub fn readable(self) -> bool {
        matches!(self, PageState::ReadOnly | PageState::ReadWrite)
    }

    /// True if a write may proceed without a fault.
    pub fn writable(self) -> bool {
        matches!(self, PageState::ReadWrite)
    }

    /// True if the node holds page bytes (possibly stale).
    pub fn has_copy(self) -> bool {
        !matches!(self, PageState::Unmapped)
    }
}

impl fmt::Display for PageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_to_page_mapping() {
        let ps = 8192;
        assert_eq!(Addr(0).page(ps), PageId(0));
        assert_eq!(Addr(8191).page(ps), PageId(0));
        assert_eq!(Addr(8192).page(ps), PageId(1));
        assert_eq!(Addr(8193).page_offset(ps), 1);
        assert_eq!(PageId(3).base(ps), Addr(3 * 8192));
    }

    #[test]
    fn state_permissions() {
        assert!(!PageState::Unmapped.readable());
        assert!(!PageState::Invalid.readable());
        assert!(PageState::ReadOnly.readable());
        assert!(!PageState::ReadOnly.writable());
        assert!(PageState::ReadWrite.readable());
        assert!(PageState::ReadWrite.writable());
    }

    #[test]
    fn copy_presence() {
        assert!(!PageState::Unmapped.has_copy());
        assert!(PageState::Invalid.has_copy());
        assert!(PageState::ReadOnly.has_copy());
        assert!(PageState::ReadWrite.has_copy());
    }
}
