//! The system driver: builds the cluster, runs the discrete-event loop,
//! executes the LRC multiple-writer protocol and the non-preemptive
//! per-node scheduler, and produces the [`RunReport`].

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cvm_net::{Message, NetworkSim, NodeId};
use cvm_sim::coop::{Burst, CoopScheduler, CoopThreadId, Yielder};
use cvm_sim::sync::Mutex;
use cvm_sim::{EventQueue, ExploreSchedule, SimDuration, SimRng, VirtualTime};

use cvm_memsim::MemSystem;

use crate::attr::ResourceAttr;
use crate::barrier::{BarrierMaster, LocalBarrier, NodeBarrier, ReduceOp};
use crate::config::CvmConfig;
use crate::ctx::{BlockReason, CtxCosts, ThreadCtx};
use crate::diff::Diff;
use crate::hist::DsmHistograms;
use crate::interval::{IntervalLog, VectorTime, WriteNotice};
use crate::lock::{AcquireOutcome, ForwardOutcome, LockLocal, LockManager, ReleaseOutcome};
use crate::msg::Payload;
use crate::node::NodeCell;
use crate::oracle::{InjectFault, Invariant, Oracle};
use crate::page::{PageId, PageState};
use crate::protocol::CopysetEntry;
use crate::report::{MemMisses, NodeBreakdown, RunReport};
use crate::sched::{NodeSched, WaitClass};
use crate::shared::{Shareable, SharedMat, SharedVec};
use crate::stats::DsmStats;
use crate::trace::{Trace, TraceEvent};

/// Builder for a CVM system: allocate shared memory, then run an SPMD
/// application. See the crate-level example.
#[derive(Debug)]
pub struct CvmBuilder {
    cfg: CvmConfig,
    next_addr: u64,
}

impl CvmBuilder {
    /// Starts building a system under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CvmConfig) -> Self {
        Invariant::ConfigPositive.require(cfg.nodes > 0 && cfg.threads_per_node > 0, || {
            format!(
                "need at least one node and one thread per node, got {}x{}",
                cfg.nodes, cfg.threads_per_node
            )
        });
        CvmBuilder { cfg, next_addr: 0 }
    }

    /// The configuration being built.
    pub fn config(&self) -> &CvmConfig {
        &self.cfg
    }

    /// Allocates a shared array of `len` elements, page-aligned so that
    /// independent arrays never share pages.
    pub fn alloc<T: Shareable>(&mut self, len: usize) -> SharedVec<T> {
        let base = self.next_addr;
        let bytes = (len * T::SIZE) as u64;
        let ps = self.cfg.page_size as u64;
        self.next_addr = (base + bytes).div_ceil(ps) * ps;
        SharedVec::from_raw(base, len)
    }

    /// Allocates a shared row-major matrix.
    pub fn alloc_mat<T: Shareable>(&mut self, rows: usize, cols: usize) -> SharedMat<T> {
        let v = self.alloc::<T>(rows * cols);
        let _ = v;
        // Recompute the base the alloc used.
        let bytes = (rows * cols * T::SIZE) as u64;
        let ps = self.cfg.page_size as u64;
        let base = self.next_addr - bytes.div_ceil(ps) * ps;
        SharedMat::from_raw(base, rows, cols)
    }

    /// Runs the SPMD application `app` on every thread and returns the run
    /// report. Statistics cover the portion after
    /// [`startup_done`](crate::ThreadCtx::startup_done) (or the whole run
    /// if it is never called).
    ///
    /// # Panics
    ///
    /// Panics if an application thread panics, or on protocol deadlock
    /// (threads blocked with no pending events — an application
    /// synchronization bug).
    pub fn run<F>(mut self, app: F) -> RunReport
    where
        F: Fn(&mut ThreadCtx<'_>) + Send + Sync + 'static,
    {
        self.cfg.segment_size = (self.next_addr as usize)
            .div_ceil(self.cfg.page_size)
            .max(1)
            * self.cfg.page_size;
        self.cfg.validate();
        let mut driver = Driver::new(self.cfg, Arc::new(app));
        driver.run()
    }
}

/// Events in the driver's own queue (network events live in `cvm-net`).
#[derive(Debug, Clone, Copy)]
enum MainEvent {
    /// The node should schedule its next ready thread.
    NodeResume(usize),
}

/// A page fetch in progress on one node.
#[derive(Debug, Default)]
struct PendingFetch {
    waiters: Vec<(usize, bool)>,
    replies_needed: usize,
    base: Option<Vec<u8>>,
    diffs: Vec<(u32, u64, usize, Diff)>,
    /// When the fault left the node (histogram sample start).
    started: VirtualTime,
}

/// Driver-private per-node control state.
struct NodeCtl {
    sched: NodeSched,
    locks: Vec<LockLocal>,
    nb: NodeBarrier,
    lb: LocalBarrier,
    /// Node-local aggregation for global reductions.
    gred: LocalBarrier,
    vt: VectorTime,
    log: IntervalLog,
    /// Per writer: interval → pages (everything this node has learned).
    notice_store: Vec<BTreeMap<u32, Vec<PageId>>>,
    /// Page → un-applied write notices `(writer, interval)`.
    pending: HashMap<usize, Vec<(usize, u32)>>,
    /// `(page, writer)` → highest applied diff tag (diff-tag namespace,
    /// used as the `since` filter for diff requests).
    applied_dtag: HashMap<(usize, usize), u32>,
    /// `(page, writer)` → highest *interval* of the writer known to be
    /// reflected in our copy (used to retire write notices). Never runs
    /// ahead of the writer's actually-closed intervals.
    applied_ivl: HashMap<(usize, usize), u32>,
    fetches: HashMap<usize, PendingFetch>,
    /// This node's own diffs: page → `(tag, close gseq, diff)` ascending.
    diff_cache: HashMap<usize, Vec<(u32, u64, Diff)>>,
    /// Page → global sequence of its most recent interval close here.
    page_close_gseq: HashMap<usize, u64>,
    out_faults: usize,
    out_locks: usize,
    /// Latest barrier-release epoch applied (filters stale duplicate
    /// releases in the non-aggregated ablation mode).
    release_seen: u32,
    breakdown: NodeBreakdown,
}

impl NodeCtl {
    fn new(nodes: usize, n_locks: usize, threads_per_node: usize) -> Self {
        NodeCtl {
            sched: NodeSched::new(threads_per_node),
            locks: (0..n_locks).map(|_| LockLocal::default()).collect(),
            nb: NodeBarrier::default(),
            lb: LocalBarrier::default(),
            gred: LocalBarrier::default(),
            vt: VectorTime::new(nodes),
            log: IntervalLog::new(),
            notice_store: vec![BTreeMap::new(); nodes],
            pending: HashMap::new(),
            applied_dtag: HashMap::new(),
            applied_ivl: HashMap::new(),
            fetches: HashMap::new(),
            diff_cache: HashMap::new(),
            page_close_gseq: HashMap::new(),
            out_faults: 0,
            out_locks: 0,
            release_seen: 0,
            breakdown: NodeBreakdown::default(),
        }
    }

    fn applied_dtag(&self, page: usize, writer: usize) -> u32 {
        self.applied_dtag.get(&(page, writer)).copied().unwrap_or(0)
    }

    fn applied_ivl(&self, page: usize, writer: usize) -> u32 {
        self.applied_ivl.get(&(page, writer)).copied().unwrap_or(0)
    }
}

/// How many global locks exist (a static table, as in CVM).
pub const MAX_LOCKS: usize = 4096;

struct ThreadInfo {
    node: usize,
    coop: CoopThreadId,
    finished: bool,
}

struct Driver {
    cfg: CvmConfig,
    cells: Vec<Arc<Mutex<NodeCell>>>,
    ctl: Vec<NodeCtl>,
    threads: Vec<ThreadInfo>,
    coop: CoopScheduler<BlockReason>,
    net: NetworkSim<Payload>,
    mainq: EventQueue<MainEvent>,
    lock_mgrs: Vec<LockManager>,
    master: BarrierMaster,
    stats: DsmStats,
    startup_arrived: usize,
    endm_arrived: usize,
    /// Master-side global-reduction episode: arrivals and accumulator.
    gred_count: usize,
    gred_acc: Option<f64>,
    gred_op: Option<ReduceOp>,
    snapshot: Option<RunReport>,
    finished_total: usize,
    /// Global interval-close sequence: a total order consistent with
    /// happens-before, used to order diff application (stands in for the
    /// vector-timestamp comparison of the real protocol).
    gseq: u64,
    /// Per-page copysets for the eager-update protocol (driver-global as
    /// a stand-in for the home-directory state a real system distributes).
    copysets: Vec<CopysetEntry>,
    /// Protocol event trace (capacity 0 = disabled).
    trace: Trace,
    /// Latency/size distributions (always on).
    hist: DsmHistograms,
    /// Per-page / per-lock attribution (always on).
    attr: ResourceAttr,
    /// `(node, lock)` → when the node's remote request left (histogram
    /// sample start, consumed at the grant).
    lock_req_at: HashMap<(usize, usize), VirtualTime>,
    /// `(lock, acquirer)` → hop count the manager decided for the grant
    /// in flight (2 = manager owned the token, 3 = forwarded to owner).
    lock_hops: HashMap<(usize, usize), u8>,
    /// Per node: first arrival time of the current barrier episode.
    barrier_arrived_at: Vec<Option<VirtualTime>>,
    /// Invariant checker: panics on violation normally, records findings
    /// under `cfg.verify`.
    oracle: Oracle,
    /// Seeded scheduler perturbation, when exploring.
    explore: Option<ExploreSchedule>,
    /// Occurrences of the configured injection's fault site seen so far
    /// (the injection corrupts occurrence `nth` only).
    inject_seen: u64,
}

type AppFn = Arc<dyn Fn(&mut ThreadCtx<'_>) + Send + Sync>;

impl Driver {
    fn new(cfg: CvmConfig, app: AppFn) -> Self {
        let nodes = cfg.nodes;
        let tpn = cfg.threads_per_node;
        let pages = cfg.pages();
        let mut rng = SimRng::seed_from(cfg.seed);
        let cells: Vec<Arc<Mutex<NodeCell>>> = (0..nodes)
            .map(|_| {
                let mem = cfg.memsim_enabled.then(|| MemSystem::new(cfg.mem));
                Arc::new(Mutex::new(NodeCell::new(cfg.page_size, pages, mem)))
            })
            .collect();
        // Node 0 performs initialization: its pages start writable.
        {
            let mut c0 = cells[0].lock();
            for s in &mut c0.state {
                *s = PageState::ReadWrite;
            }
        }
        let mut ctl: Vec<NodeCtl> = (0..nodes)
            .map(|_| NodeCtl::new(nodes, MAX_LOCKS, tpn))
            .collect();
        let lock_mgrs: Vec<LockManager> = (0..MAX_LOCKS)
            .map(|l| LockManager::new(l % nodes))
            .collect();
        for (l, mgr) in lock_mgrs.iter().enumerate() {
            ctl[mgr.tail].locks[l].cached = true;
        }
        let costs = CtxCosts {
            page_size: cfg.page_size,
            access_base_ns: cfg.access_base.as_ns(),
            signal_ns: cfg.signal.as_ns(),
            mprotect_ns: cfg.mprotect.as_ns(),
            twin_copy_ns: cfg.twin_copy.as_ns(),
            code_pages: cfg.code_pages,
        };
        let mut coop: CoopScheduler<BlockReason> = CoopScheduler::new();
        let mut threads = Vec::with_capacity(nodes * tpn);
        // Index loop intentional: `node` is both an id stored in thread
        // info and an index into `cells`.
        #[allow(clippy::needless_range_loop)]
        for node in 0..nodes {
            for local in 0..tpn {
                let gid = node * tpn + local;
                let cell = Arc::clone(&cells[node]);
                let app = Arc::clone(&app);
                let trng = rng.derive(gid as u64);
                let coop_id = coop.spawn(move |y: &Yielder<BlockReason>| {
                    let mut ctx =
                        ThreadCtx::new(y, cell, costs, gid, node, local, nodes, tpn, trng);
                    app(&mut ctx);
                    ctx.flush_burst();
                });
                threads.push(ThreadInfo {
                    node,
                    coop: coop_id,
                    finished: false,
                });
            }
        }
        let cfg2_trace = cfg.trace_capacity;
        let oracle = if cfg.verify {
            Oracle::recording(cfg.verify_sink.clone())
        } else {
            Oracle::disabled()
        };
        let explore = cfg.explore.map(ExploreSchedule::new);
        let mut net = NetworkSim::new(nodes, cfg.latency.clone());
        if !cfg.jitter_max.is_zero() {
            net.set_jitter(rng.derive(0x7177), cfg.jitter_max);
        }
        if let Some(loss) = cfg.loss {
            net.enable_loss(rng.derive(0xDEAD), loss);
        }
        let barrier_expected = if cfg.aggregate_barriers {
            nodes
        } else {
            nodes * tpn
        };
        Driver {
            cfg,
            cells,
            ctl,
            threads,
            coop,
            net,
            mainq: EventQueue::new(),
            lock_mgrs,
            master: BarrierMaster::new(nodes, barrier_expected),
            stats: DsmStats::new(),
            startup_arrived: 0,
            endm_arrived: 0,
            gred_count: 0,
            gred_acc: None,
            gred_op: None,
            snapshot: None,
            finished_total: 0,
            gseq: 0,
            copysets: Vec::new(),
            trace: Trace::new(cfg2_trace),
            hist: DsmHistograms::new(),
            attr: ResourceAttr::new(),
            lock_req_at: HashMap::new(),
            lock_hops: HashMap::new(),
            barrier_arrived_at: vec![None; nodes],
            oracle,
            explore,
            inject_seen: 0,
        }
    }

    /// True when the configured injection's fault site is at its targeted
    /// occurrence; advances the occurrence counter either way.
    fn inject_hits(&mut self, want: fn(&InjectFault) -> Option<u64>) -> bool {
        let Some(fault) = &self.cfg.inject else {
            return false;
        };
        let Some(nth) = want(fault) else {
            return false;
        };
        let seen = self.inject_seen;
        self.inject_seen += 1;
        seen == nth
    }

    fn run(&mut self) -> RunReport {
        self.copysets = (0..self.cfg.pages())
            .map(|_| CopysetEntry::full(self.cfg.nodes))
            .collect();
        for tid in 0..self.threads.len() {
            let n = self.threads[tid].node;
            self.ctl[n].sched.ready.push_back(tid);
        }
        for n in 0..self.cfg.nodes {
            self.schedule_resume(n, VirtualTime::ZERO);
        }
        loop {
            let limit = self.mainq.peek_time().unwrap_or(VirtualTime::MAX);
            if let Some((t, msg)) = self.net.poll(limit) {
                self.handle_payload(msg.dst.0, msg.src.0, msg.payload, t);
                continue;
            }
            match self.mainq.pop() {
                Some((t, MainEvent::NodeResume(n))) => self.run_node(n, t),
                None => break,
            }
        }
        assert_eq!(
            self.finished_total,
            self.threads.len(),
            "deadlock: {} of {} threads never finished (blocked on \
             unsatisfied synchronization)",
            self.threads.len() - self.finished_total,
            self.threads.len()
        );
        self.build_report()
    }

    fn build_report(&mut self) -> RunReport {
        if let Some(snap) = self.snapshot.take() {
            return snap;
        }
        self.snapshot_report()
    }

    /// Assembles a report from the current state.
    fn snapshot_report(&self) -> RunReport {
        let mut total = VirtualTime::ZERO;
        let mut nodes = Vec::with_capacity(self.cfg.nodes);
        let mut stats = self.stats.clone();
        for (n, ctl) in self.ctl.iter().enumerate() {
            let mut b = ctl.breakdown;
            b.clock = ctl.sched.clock;
            total = total.max(ctl.sched.clock);
            stats.user_time += b.user;
            stats.wait_barrier += b.barrier;
            stats.wait_fault += b.fault;
            stats.wait_lock += b.lock;
            stats.twins_created += self.cells[n].lock().twin_creations;
            nodes.push(b);
        }
        let mut mem = MemMisses::default();
        for cell in &self.cells {
            let c = cell.lock();
            if let Some(m) = &c.memsim {
                mem.dcache += m.dcache_misses();
                mem.dtlb += m.dtlb_misses();
                mem.itlb += m.itlb_misses();
            }
        }
        RunReport {
            total_time: total,
            stats,
            net: self.net.stats().clone(),
            loss: self.net.loss_stats(),
            nodes,
            mem,
            hist: self.hist.clone(),
            attr: self.attr.clone(),
            trace: if self.trace.enabled() {
                Some(self.trace.clone())
            } else {
                None
            },
            findings: self.cfg.verify_sink.snapshot(),
            explore_decisions: self.explore.as_ref().map_or(0, ExploreSchedule::decisions),
        }
    }

    // ---- scheduling ----------------------------------------------------

    fn schedule_resume(&mut self, n: usize, t: VirtualTime) {
        if !self.ctl[n].sched.resume_scheduled {
            self.ctl[n].sched.resume_scheduled = true;
            self.mainq.push(t, MainEvent::NodeResume(n));
        }
    }

    fn make_ready(&mut self, n: usize, tid: usize, t: VirtualTime) {
        self.ctl[n].sched.ready.push_back(tid);
        let at = self.ctl[n].sched.clock.max(t);
        self.schedule_resume(n, at);
    }

    /// Snapshot of what an idle node is waiting for, by priority.
    fn wait_class(&self, n: usize) -> WaitClass {
        let ctl = &self.ctl[n];
        if ctl.out_faults > 0 {
            WaitClass::Fault
        } else if ctl.out_locks > 0 || ctl.locks.iter().any(|l| !l.local_queue.is_empty()) {
            WaitClass::Lock
        } else if !ctl.nb.blocked.is_empty() {
            WaitClass::Barrier
        } else {
            WaitClass::Other
        }
    }

    fn begin_idle_if_needed(&mut self, n: usize) {
        let all_done = self.ctl[n].sched.all_finished();
        if !all_done && self.ctl[n].sched.idle_since.is_none() {
            let class = self.wait_class(n);
            let clock = self.ctl[n].sched.clock;
            self.ctl[n].sched.idle_since = Some((clock, class));
        }
    }

    fn settle_idle(&mut self, n: usize, until: VirtualTime) {
        if let Some((since, class)) = self.ctl[n].sched.idle_since.take() {
            if until > since {
                let d = until - since;
                let b = &mut self.ctl[n].breakdown;
                match class {
                    WaitClass::Fault => b.fault += d,
                    WaitClass::Lock => b.lock += d,
                    WaitClass::Barrier | WaitClass::Other => b.barrier += d,
                }
            }
        }
    }

    fn run_node(&mut self, n: usize, t: VirtualTime) {
        self.ctl[n].sched.resume_scheduled = false;
        if !self.ctl[n].sched.has_ready() {
            return;
        }
        let clock0 = self.ctl[n].sched.clock.max(t);
        self.settle_idle(n, clock0);
        self.ctl[n].sched.clock = clock0;
        let explored = self
            .explore
            .as_mut()
            .and_then(|e| e.pick(self.ctl[n].sched.ready.len()));
        let tid = if let Some(idx) = explored {
            // Exploration overrides the policy with a seeded choice among
            // the ready set (budget-bounded, then the policy resumes).
            self.ctl[n].sched.ready.remove(idx).expect("pick in range")
        } else if self.cfg.lifo_schedule {
            // Memory-conscious policy: run the most recently readied
            // thread, whose working set is most likely still cached.
            self.ctl[n].sched.ready.pop_back().expect("ready checked")
        } else {
            self.ctl[n].sched.ready.pop_front().expect("ready checked")
        };
        if let Some(prev) = self.ctl[n].sched.last_ran {
            if prev != tid {
                self.ctl[n].sched.clock += self.cfg.thread_switch;
                self.ctl[n].breakdown.user += self.cfg.thread_switch;
                self.stats.thread_switches += 1;
            }
        }
        if let Some(prev) = self.ctl[n].sched.last_ran {
            if prev != tid && self.trace.enabled() {
                let at = self.ctl[n].sched.clock;
                self.trace.record(
                    at,
                    TraceEvent::ThreadSwitch {
                        node: n,
                        from: prev,
                        to: tid,
                    },
                );
            }
        }
        self.ctl[n].sched.last_ran = Some(tid);
        let burst = self.coop.resume(self.threads[tid].coop);
        let consumed = SimDuration::from_ns(self.cells[n].lock().drain_burst());
        self.ctl[n].sched.clock += consumed;
        self.ctl[n].breakdown.user += consumed;
        match burst {
            Burst::Finished => {
                self.threads[tid].finished = true;
                self.ctl[n].sched.finished += 1;
                self.finished_total += 1;
            }
            Burst::Blocked(reason) => self.handle_reason(n, tid, reason),
        }
        if self.ctl[n].sched.has_ready() {
            let at = self.ctl[n].sched.clock;
            self.schedule_resume(n, at);
        } else {
            self.begin_idle_if_needed(n);
        }
    }

    // ---- application block reasons --------------------------------------

    fn handle_reason(&mut self, n: usize, tid: usize, reason: BlockReason) {
        match reason {
            BlockReason::Fault { page, write } => self.handle_fault(n, tid, page, write),
            BlockReason::Acquire { lock } => self.handle_acquire(n, tid, lock),
            BlockReason::Release { lock } => self.handle_release(n, tid, lock),
            BlockReason::Barrier => self.handle_barrier(n, tid),
            BlockReason::LocalBarrier { reduce } => self.handle_local_barrier(n, tid, reduce),
            BlockReason::GlobalReduce { reduce } => self.handle_global_reduce(n, tid, reduce),
            BlockReason::Startup => self.handle_startup(),
            BlockReason::EndMeasure => self.handle_end_measure(tid),
            BlockReason::Yield => self.ctl[n].sched.ready.push_back(tid),
        }
    }

    fn note_request_initiated(&mut self, n: usize) {
        self.stats.outstanding_faults += self.ctl[n].out_faults as u64;
        self.stats.outstanding_locks += self.ctl[n].out_locks as u64;
    }

    fn handle_fault(&mut self, n: usize, tid: usize, page: PageId, write: bool) {
        let p = page.0;
        if let Some(fetch) = self.ctl[n].fetches.get_mut(&p) {
            // An identical request is already outstanding: the paper's
            // "Block Same Page".
            fetch.waiters.push((tid, write));
            self.stats.block_same_page += 1;
            return;
        }
        // Fault overhead: user-level signal + protection change.
        let overhead = self.cfg.signal + self.cfg.mprotect;
        self.ctl[n].sched.clock += overhead;
        self.ctl[n].breakdown.user += overhead;
        let now = self.ctl[n].sched.clock;
        // What do we need? A base copy if we never had one, plus diffs for
        // every pending write notice, grouped by writer.
        let state = self.cells[n].lock().state[p];
        let mut writers: Vec<(usize, u32)> = Vec::new(); // (writer, since)
        if let Some(pend) = self.ctl[n].pending.get(&p) {
            let mut ws: Vec<usize> = pend.iter().map(|&(w, _)| w).collect();
            ws.sort_unstable();
            ws.dedup();
            for w in ws {
                writers.push((w, self.ctl[n].applied_dtag(p, w)));
            }
        }
        let home = p % self.cfg.nodes;
        let need_base = state == PageState::Unmapped && home != n;
        if !need_base && writers.is_empty() {
            // Nothing remote is required (e.g. pre-startup touch of a page
            // homed here): validate and continue.
            let mut cell = self.cells[n].lock();
            if matches!(cell.state[p], PageState::Unmapped | PageState::Invalid) {
                cell.state[p] = PageState::ReadOnly;
            }
            drop(cell);
            self.ctl[n].sched.ready.push_back(tid);
            return;
        }
        self.note_request_initiated(n);
        self.stats.remote_faults += 1;
        self.ctl[n].out_faults += 1;
        self.attr.page_mut(p).faults += 1;
        self.trace.record(
            now,
            TraceEvent::Fault {
                node: n,
                page,
                write,
            },
        );
        let mut fetch = PendingFetch {
            waiters: vec![(tid, write)],
            started: now,
            ..Default::default()
        };
        if need_base {
            fetch.replies_needed += 1;
        }
        fetch.replies_needed += writers.len();
        self.ctl[n].fetches.insert(p, fetch);
        if need_base {
            self.send(n, home, Payload::PageRequest { page }, now);
        }
        for (w, since) in writers {
            self.send(n, w, Payload::DiffRequest { page, since }, now);
        }
    }

    fn handle_acquire(&mut self, n: usize, tid: usize, lock: usize) {
        Invariant::LockIndexInRange.require(lock < MAX_LOCKS, || {
            format!("lock index {lock} outside the static table of {MAX_LOCKS}")
        });
        match self.ctl[n].locks[lock].try_acquire(tid) {
            AcquireOutcome::LocalGrant => {
                self.stats.local_lock_acquires += 1;
                self.attr.lock_mut(lock).local_acquires += 1;
                self.ctl[n].sched.ready.push_back(tid);
            }
            AcquireOutcome::QueuedLocally => {
                self.stats.block_same_lock += 1;
                self.attr.lock_mut(lock).contended += 1;
            }
            AcquireOutcome::SendRequest => {
                self.note_request_initiated(n);
                let at = self.ctl[n].sched.clock;
                self.trace
                    .record(at, TraceEvent::LockRequested { node: n, lock });
                self.stats.remote_locks += 1;
                self.ctl[n].out_locks += 1;
                self.attr.lock_mut(lock).remote_acquires += 1;
                self.lock_req_at.insert((n, lock), at);
                let now = self.ctl[n].sched.clock;
                let vt = self.ctl[n].vt.clone();
                let mgr = lock % self.cfg.nodes;
                if mgr == n {
                    self.manager_handle(n, lock, n, vt, now);
                } else {
                    self.send(
                        n,
                        mgr,
                        Payload::LockRequest {
                            lock,
                            acquirer: n,
                            vt,
                        },
                        now,
                    );
                }
            }
        }
    }

    fn handle_release(&mut self, n: usize, tid: usize, lock: usize) {
        let now = self.ctl[n].sched.clock;
        let prefer_local = self.cfg.prefer_local_lock_waiters;
        match self.ctl[n].locks[lock].release(tid, prefer_local) {
            ReleaseOutcome::LocalHandoff(next) => {
                self.stats.local_lock_handoffs += 1;
                self.attr.lock_mut(lock).local_handoffs += 1;
                self.trace
                    .record(now, TraceEvent::LockLocalHandoff { node: n, lock });
                self.ctl[n].sched.ready.push_back(next);
            }
            ReleaseOutcome::GrantRemote(node, avt) => {
                self.grant_lock(n, lock, node, &avt, now);
                // Ablation path: with fair ordering, remaining local
                // waiters must re-request the token remotely.
                if !self.ctl[n].locks[lock].local_queue.is_empty()
                    && !self.ctl[n].locks[lock].requested
                {
                    self.ctl[n].locks[lock].requested = true;
                    self.note_request_initiated(n);
                    self.stats.remote_locks += 1;
                    self.ctl[n].out_locks += 1;
                    self.attr.lock_mut(lock).remote_acquires += 1;
                    self.lock_req_at.insert((n, lock), now);
                    let vt = self.ctl[n].vt.clone();
                    let mgr = lock % self.cfg.nodes;
                    if mgr == n {
                        self.manager_handle(n, lock, n, vt, now);
                    } else {
                        self.send(
                            n,
                            mgr,
                            Payload::LockRequest {
                                lock,
                                acquirer: n,
                                vt,
                            },
                            now,
                        );
                    }
                }
            }
            ReleaseOutcome::KeepCached => {}
        }
        // The releasing thread continues immediately (front of the queue,
        // no switch charge since it is the same thread).
        self.ctl[n].sched.ready.push_front(tid);
    }

    fn handle_barrier(&mut self, n: usize, tid: usize) {
        let last = self.ctl[n].nb.arrive_local(tid, self.cfg.threads_per_node);
        let now = self.ctl[n].sched.clock;
        if !last {
            if !self.cfg.aggregate_barriers {
                // Ablation: every thread sends its own arrival message
                // (consistency information still flows once, with the
                // node's final arrival).
                let vt = self.ctl[n].vt.clone();
                self.arrive_at_master(n, vt, Vec::new(), now);
            }
            return;
        }
        self.close_interval(n);
        let latest = self.ctl[n].log.latest();
        let since = self.ctl[n].nb.notices_sent_upto;
        let mut notices = self.ctl[n].log.notices_between(n, since, latest);
        self.ctl[n].nb.notices_sent_upto = latest;
        if self.cfg.inject.is_some() {
            notices.retain(|_| {
                !self.inject_hits(|f| match f {
                    InjectFault::DropWriteNotice { nth } => Some(*nth),
                    _ => None,
                })
            });
        }
        let vt = self.ctl[n].vt.clone();
        self.arrive_at_master(n, vt, notices, now);
    }

    fn arrive_at_master(
        &mut self,
        n: usize,
        vt: VectorTime,
        notices: Vec<WriteNotice>,
        now: VirtualTime,
    ) {
        self.trace.record(
            now,
            TraceEvent::BarrierArrived {
                node: n,
                epoch: self.master.epoch(),
            },
        );
        // First arrival starts the node's stall clock (the non-aggregated
        // ablation arrives once per thread).
        if self.barrier_arrived_at[n].is_none() {
            self.barrier_arrived_at[n] = Some(now);
        }
        if n == 0 {
            self.master_arrive(n, vt, notices, now);
        } else {
            let epoch = self.master.epoch();
            self.send(
                n,
                0,
                Payload::BarrierArrive {
                    epoch,
                    node: n,
                    vt,
                    notices,
                },
                now,
            );
        }
    }

    /// Feeds one arrival to the barrier master, auditing the arrival count
    /// first so a broken episode records a finding instead of tripping the
    /// master's internal assert.
    fn master_arrive(
        &mut self,
        from: usize,
        vt: VectorTime,
        notices: Vec<WriteNotice>,
        t: VirtualTime,
    ) {
        if self.master.arrived() >= self.master.expected() {
            self.oracle
                .check(Invariant::BarrierArrivalCount, false, Some(from), t, || {
                    format!(
                        "arrival past the {} expected in episode {}",
                        self.master.expected(),
                        self.master.epoch()
                    )
                });
            return;
        }
        if self.master.arrive(&vt, notices) {
            self.barrier_release(t);
        }
    }

    fn handle_local_barrier(
        &mut self,
        n: usize,
        tid: usize,
        reduce: Option<(crate::barrier::ReduceOp, f64)>,
    ) {
        let last = self.ctl[n]
            .lb
            .arrive(tid, reduce, self.cfg.threads_per_node);
        if !last {
            return;
        }
        self.stats.local_barriers += 1;
        let (woken, val) = self.ctl[n].lb.complete();
        self.cells[n].lock().lb_result = val.unwrap_or(0.0);
        for t in woken {
            self.ctl[n].sched.ready.push_back(t);
        }
    }

    fn handle_end_measure(&mut self, _tid: usize) {
        self.endm_arrived += 1;
        if self.endm_arrived < self.threads.len() {
            return;
        }
        self.endm_arrived = 0;
        self.snapshot = Some(self.snapshot_report());
        // Wake everyone; the rendezvous acts as a barrier without cost.
        for tid in 0..self.threads.len() {
            let n = self.threads[tid].node;
            self.ctl[n].sched.ready.push_back(tid);
        }
        for n in 0..self.cfg.nodes {
            let at = self.ctl[n].sched.clock;
            self.schedule_resume(n, at);
        }
    }

    fn handle_global_reduce(&mut self, n: usize, tid: usize, reduce: (ReduceOp, f64)) {
        let last = self.ctl[n]
            .gred
            .arrive(tid, Some(reduce), self.cfg.threads_per_node);
        if !last {
            return;
        }
        // Threads stay parked in `gred.blocked` until the release; only
        // the per-node combined value travels.
        let acc = self.ctl[n].gred.reduce_acc.expect("contributions present");
        let now = self.ctl[n].sched.clock;
        if n == 0 {
            self.reduce_arrive_at_master(0, reduce.0, acc, now);
        } else {
            self.send(
                n,
                0,
                Payload::ReduceArrive {
                    node: n,
                    op: reduce.0,
                    value: acc,
                },
                now,
            );
        }
    }

    fn reduce_arrive_at_master(&mut self, _node: usize, op: ReduceOp, value: f64, t: VirtualTime) {
        self.gred_count += 1;
        self.gred_acc = Some(match self.gred_acc {
            Some(acc) => op.combine(acc, value),
            None => value,
        });
        self.gred_op = Some(op);
        if self.gred_count < self.cfg.nodes {
            return;
        }
        let result = self.gred_acc.take().expect("accumulated");
        self.gred_count = 0;
        self.gred_op = None;
        self.stats.global_reduces += 1;
        for q in 1..self.cfg.nodes {
            self.send(0, q, Payload::ReduceRelease { value: result }, t);
        }
        self.apply_reduce_release(0, result, t);
    }

    fn apply_reduce_release(&mut self, n: usize, value: f64, t: VirtualTime) {
        self.cells[n].lock().gr_result = value;
        let (woken, _) = self.ctl[n].gred.complete();
        for tid in woken {
            self.make_ready(n, tid, t);
        }
    }

    fn handle_startup(&mut self) {
        self.startup_arrived += 1;
        if self.startup_arrived < self.threads.len() {
            return;
        }
        self.startup_reset();
    }

    /// Makes global data uniform across nodes and zeroes all measurements:
    /// the paper's "global data is consistent across all nodes until
    /// startup has finished".
    fn startup_reset(&mut self) {
        self.oracle.check(
            Invariant::QuiescentStartup,
            self.net.in_flight() == 0,
            None,
            VirtualTime::ZERO,
            || format!("{} messages in flight at startup", self.net.in_flight()),
        );
        let init_mem = {
            let mut c0 = self.cells[0].lock();
            c0.clear_twins();
            c0.dirty.clear();
            c0.twin_creations = 0;
            c0.mem.clone()
        };
        for (n, cell) in self.cells.iter().enumerate() {
            let mut c = cell.lock();
            if n != 0 {
                c.mem.copy_from_slice(&init_mem);
                c.twin_creations = 0;
            }
            for s in &mut c.state {
                *s = PageState::ReadOnly;
            }
            if self.cfg.memsim_enabled {
                c.memsim = Some(MemSystem::new(self.cfg.mem));
            }
        }
        for ctl in &mut self.ctl {
            ctl.sched.clock = VirtualTime::ZERO;
            ctl.sched.last_ran = None;
            ctl.sched.idle_since = None;
            ctl.breakdown = NodeBreakdown::default();
            debug_assert!(ctl.fetches.is_empty());
            debug_assert!(ctl.pending.is_empty());
        }
        self.stats.reset();
        self.trace.reset();
        self.hist.reset();
        self.attr.reset();
        self.lock_req_at.clear();
        self.lock_hops.clear();
        for slot in &mut self.barrier_arrived_at {
            *slot = None;
        }
        self.copysets = (0..self.cfg.pages())
            .map(|_| CopysetEntry::full(self.cfg.nodes))
            .collect();
        self.net = NetworkSim::new(self.cfg.nodes, self.cfg.latency.clone());
        let mut rng = SimRng::seed_from(self.cfg.seed ^ 0xBEEF);
        if !self.cfg.jitter_max.is_zero() {
            self.net.set_jitter(rng.derive(0x7177), self.cfg.jitter_max);
        }
        if let Some(loss) = self.cfg.loss {
            self.net.enable_loss(rng.derive(0xDEAD), loss);
        }
        self.mainq = EventQueue::new();
        for n in 0..self.cfg.nodes {
            self.ctl[n].sched.resume_scheduled = false;
        }
        for tid in 0..self.threads.len() {
            let n = self.threads[tid].node;
            self.ctl[n].sched.ready.push_back(tid);
        }
        for n in 0..self.cfg.nodes {
            self.schedule_resume(n, VirtualTime::ZERO);
        }
        self.startup_arrived = 0;
    }

    // ---- consistency machinery ------------------------------------------

    /// Closes the node's current interval if it dirtied any pages.
    fn close_interval(&mut self, n: usize) {
        let pages = self.cells[n].lock().close_dirty();
        if pages.is_empty() {
            return;
        }
        self.gseq += 1;
        let gseq = self.gseq;
        for &p in &pages {
            self.ctl[n].page_close_gseq.insert(p, gseq);
        }
        let page_ids: Vec<PageId> = pages.iter().copied().map(PageId).collect();
        let own_before = self.ctl[n].vt.get(n);
        let idx = self.ctl[n].log.close(page_ids.clone());
        let at = self.ctl[n].sched.clock;
        self.trace.record(
            at,
            TraceEvent::IntervalClosed {
                node: n,
                interval: idx,
                pages: page_ids.len(),
            },
        );
        if self.oracle.enabled() {
            // A node's own component tracks exactly its closed-interval
            // count, so each close extends it by one — no gaps, no
            // regression.
            self.oracle.check(
                Invariant::VtMonotonic,
                own_before + 1 == idx,
                Some(n),
                at,
                || format!("own vector component {own_before} but closed interval {idx}"),
            );
            self.oracle.check(
                Invariant::IntervalContiguity,
                idx == self.ctl[n].log.latest(),
                Some(n),
                at,
                || format!("interval {idx} closed out of sequence"),
            );
            for &page in &page_ids {
                self.trace.record(
                    at,
                    TraceEvent::NoticeCreated {
                        node: n,
                        writer: n,
                        interval: idx,
                        page,
                    },
                );
            }
        }
        self.ctl[n].vt.advance(n, idx);
        self.ctl[n].notice_store[n].insert(idx, page_ids);
        if self.cfg.protocol.pushes_updates() {
            self.eager_push(n, &pages);
        }
    }

    /// Eager-update protocol: at interval close, extract and push the new
    /// diff of every dirtied page to the page's copyset, pruning members
    /// that never touch the page between pushes (Munin's update timeout).
    fn eager_push(&mut self, n: usize, pages: &[usize]) {
        let now = self.ctl[n].sched.clock;
        for &p in pages {
            let Some(entry) = self.ensure_extracted(n, p) else {
                continue;
            };
            let upto = self.ctl[n].log.latest();
            for target in self.copysets[p].push_targets(n) {
                if self.copysets[p].record_push(target) {
                    // Too many unused updates: drop the member. The
                    // notification stands in for the directory update a
                    // distributed implementation would send.
                    self.copysets[p].remove(target);
                    self.stats.copies_dropped += 1;
                    self.send(
                        n,
                        target,
                        Payload::DropCopy {
                            page: PageId(p),
                            node: target,
                        },
                        now,
                    );
                } else {
                    self.stats.updates_pushed += 1;
                    self.trace.record(
                        now,
                        TraceEvent::UpdatePushed {
                            node: n,
                            page: PageId(p),
                            target,
                        },
                    );
                    self.send(
                        n,
                        target,
                        Payload::UpdatePush {
                            page: PageId(p),
                            diff: entry.clone(),
                            upto,
                        },
                        now,
                    );
                }
            }
        }
    }

    /// Extracts (lazily) the node's pending modifications of `page` into a
    /// cached diff. Returns the newly created entry, if any.
    fn ensure_extracted(&mut self, n: usize, page: usize) -> Option<(u32, u64, Diff)> {
        let has_twin = self.cells[n].lock().has_twin(page);
        if !has_twin {
            return None;
        }
        let diff = {
            let cell = self.cells[n].lock();
            let twin = cell.twin(page).expect("twin checked");
            Diff::create(PageId(page), twin, cell.page_bytes(page))
        };
        if diff.is_empty() {
            return None;
        }
        if self.oracle.enabled() {
            // The diff must be exactly the delta between twin and page:
            // patching the twin with it reproduces the current contents.
            let ok = {
                let cell = self.cells[n].lock();
                let twin = cell.twin(page).expect("twin checked");
                let mut patched = twin.to_vec();
                diff.apply(&mut patched);
                patched == cell.page_bytes(page)
            };
            let at = self.ctl[n].sched.clock;
            self.oracle
                .check(Invariant::TwinDiffRoundTrip, ok, Some(n), at, || {
                    format!("diff of p{page} does not reproduce the page from its twin")
                });
        }
        let last_tag = self.ctl[n]
            .diff_cache
            .get(&page)
            .and_then(|v| v.last().map(|&(t, _, _)| t))
            .unwrap_or(0);
        let tag = self.ctl[n].log.latest().max(last_tag + 1).max(1);
        let gseq = match self.ctl[n].page_close_gseq.get(&page) {
            Some(&g) => g,
            None => {
                self.gseq += 1;
                self.gseq
            }
        };
        {
            // Refresh the twin so later diffs cover only newer writes.
            let mut cell = self.cells[n].lock();
            let current = cell.page_bytes(page).to_vec();
            cell.set_twin(page, current);
        }
        self.ctl[n]
            .diff_cache
            .entry(page)
            .or_default()
            .push((tag, gseq, diff.clone()));
        self.stats.diffs_created += 1;
        self.hist.diff_bytes.record(diff.modified_bytes() as u64);
        {
            let pa = self.attr.page_mut(page);
            pa.diffs_created += 1;
            pa.diff_bytes += diff.modified_bytes() as u64;
        }
        {
            let at = self.ctl[n].sched.clock;
            self.trace.record(
                at,
                TraceEvent::DiffCreated {
                    node: n,
                    page: PageId(page),
                    bytes: diff.modified_bytes(),
                },
            );
        }
        Some((tag, gseq, diff))
    }

    /// Merges `vt` into node `n`'s vector time, auditing (under `verify`)
    /// that the advance is sound: no component names an interval its
    /// writer never closed, and every interval newly covered has its
    /// write notices present in `n`'s store — the coverage half of LRC's
    /// correctness argument (a dropped notice means `n` silently keeps a
    /// stale copy while claiming to have seen the write).
    fn checked_merge(&mut self, n: usize, vt: &VectorTime, at: VirtualTime) {
        if self.oracle.enabled() {
            for q in 0..self.cfg.nodes {
                let claimed = vt.get(q);
                let closed = self.ctl[q].log.latest();
                self.oracle
                    .check(Invariant::VtBounded, claimed <= closed, Some(n), at, || {
                        format!("timestamp names n{q}.{claimed} but only {closed} closed")
                    });
            }
            let before = self.ctl[n].vt.clone();
            self.ctl[n].vt.merge(vt);
            for q in 0..self.cfg.nodes {
                if q == n {
                    continue;
                }
                let to = self.ctl[n].vt.get(q);
                for ivl in before.get(q) + 1..=to {
                    let known = self.ctl[n].notice_store[q].contains_key(&ivl);
                    self.oracle
                        .check(Invariant::NoticeCoverage, known, Some(n), at, || {
                            format!("advanced past n{q}.{ivl} without its write notices")
                        });
                }
            }
        } else {
            self.ctl[n].vt.merge(vt);
        }
    }

    /// Applies incoming write notices at node `n`: record, and invalidate
    /// resident pages.
    fn apply_notices(&mut self, n: usize, notices: &[WriteNotice]) {
        // If an incoming notice invalidates a page we have dirtied in the
        // still-open interval, close the interval first: those writes
        // logically belong to the interval ended by our last release and
        // must get their own write notice, or remote copies would never
        // be invalidated for them.
        let must_close = {
            let cell = self.cells[n].lock();
            notices
                .iter()
                .any(|wn| wn.writer != n && cell.dirty.contains(&wn.page.0))
        };
        if must_close {
            self.close_interval(n);
        }
        for wn in notices {
            if wn.writer == n {
                continue;
            }
            // Record in the store (for later lock-grant computation).
            let slot = self.ctl[n].notice_store[wn.writer]
                .entry(wn.interval)
                .or_default();
            if !slot.contains(&wn.page) {
                slot.push(wn.page);
            }
            if self.cfg.verify {
                let at = self.ctl[n].sched.clock;
                self.trace.record(
                    at,
                    TraceEvent::NoticeCreated {
                        node: n,
                        writer: wn.writer,
                        interval: wn.interval,
                        page: wn.page,
                    },
                );
            }
            if wn.interval <= self.ctl[n].applied_ivl(wn.page.0, wn.writer) {
                continue; // already reflected in our copy
            }
            let pend = self.ctl[n].pending.entry(wn.page.0).or_default();
            if !pend.contains(&(wn.writer, wn.interval)) {
                pend.push((wn.writer, wn.interval));
            }
            let p = wn.page.0;
            let state = self.cells[n].lock().state[p];
            if state.readable() {
                let skip = self.inject_hits(|f| match f {
                    InjectFault::SkipInvalidate { nth } => Some(*nth),
                    _ => None,
                });
                if !skip {
                    // If we were concurrently writing it, extract our diff
                    // before losing the twin.
                    let _ = self.ensure_extracted(n, p);
                    let mut cell = self.cells[n].lock();
                    cell.clear_twin(p);
                    cell.dirty.remove(&p);
                    cell.state[p] = PageState::Invalid;
                    drop(cell);
                    self.attr.page_mut(p).invalidations += 1;
                    let at = self.ctl[n].sched.clock;
                    self.trace.record(
                        at,
                        TraceEvent::Invalidated {
                            node: n,
                            page: wn.page,
                            writer: wn.writer,
                        },
                    );
                }
            }
            if self.oracle.enabled() {
                // The notice is now pending: a still-readable copy would
                // serve stale data.
                let readable = self.cells[n].lock().state[p].readable();
                let at = self.ctl[n].sched.clock;
                self.oracle.check(
                    Invariant::PendingImpliesInvalid,
                    !readable,
                    Some(n),
                    at,
                    || {
                        format!(
                            "{} still readable with pending notice n{}.{}",
                            wn.page, wn.writer, wn.interval
                        )
                    },
                );
            }
        }
    }

    /// Notices for every interval (any writer) in `granter`'s vector time
    /// but not in `acq_vt` — the LRC grant payload.
    fn notices_for_grant(&self, granter: usize, acq_vt: &VectorTime) -> Vec<WriteNotice> {
        let ctl = &self.ctl[granter];
        let mut out = Vec::new();
        for q in 0..self.cfg.nodes {
            let from = acq_vt.get(q);
            let to = ctl.vt.get(q);
            if to <= from {
                continue;
            }
            for (&ivl, pages) in ctl.notice_store[q].range(from + 1..=to) {
                for &page in pages {
                    out.push(WriteNotice {
                        writer: q,
                        interval: ivl,
                        page,
                    });
                }
            }
        }
        out
    }

    fn grant_lock(
        &mut self,
        granter: usize,
        lock: usize,
        to: usize,
        acq_vt: &VectorTime,
        t: VirtualTime,
    ) {
        self.close_interval(granter);
        let notices = self.notices_for_grant(granter, acq_vt);
        let vt = self.ctl[granter].vt.clone();
        if self.cfg.verify {
            self.trace.record(
                t,
                TraceEvent::LockTransfer {
                    lock,
                    from: granter,
                    to,
                },
            );
        }
        self.send(granter, to, Payload::LockGrant { lock, vt, notices }, t);
    }

    fn manager_handle(
        &mut self,
        mgr_node: usize,
        lock: usize,
        acquirer: usize,
        vt: VectorTime,
        t: VirtualTime,
    ) {
        let prev = self.lock_mgrs[lock].enqueue(acquirer);
        self.oracle.check(
            Invariant::SingleLockRequest,
            prev != acquirer,
            Some(acquirer),
            t,
            || format!("double request for lock {lock} from n{acquirer}"),
        );
        if prev == acquirer {
            // Recording mode: forwarding a node to itself would wedge the
            // distributed queue; stop after the finding.
            return;
        }
        // The manager decides the grant's path length here: token at the
        // manager → 2 hops, forwarded to the current owner → 3 hops.
        let hops = if prev == mgr_node { 2 } else { 3 };
        self.lock_hops.insert((lock, acquirer), hops);
        if prev == mgr_node {
            self.forward_at(prev, lock, acquirer, vt, t);
        } else {
            self.send(
                mgr_node,
                prev,
                Payload::LockForward { lock, acquirer, vt },
                t,
            );
        }
    }

    fn forward_at(
        &mut self,
        owner: usize,
        lock: usize,
        acquirer: usize,
        vt: VectorTime,
        t: VirtualTime,
    ) {
        match self.ctl[owner].locks[lock].handle_forward(acquirer, vt) {
            ForwardOutcome::GrantNow(to, avt) => self.grant_lock(owner, lock, to, &avt, t),
            ForwardOutcome::Parked => {}
        }
    }

    fn barrier_release(&mut self, t: VirtualTime) {
        let (vt, notices) = self.master.release();
        self.stats.barriers_crossed += 1;
        self.trace.record(
            t,
            TraceEvent::BarrierReleased {
                epoch: self.master.epoch(),
                notices: notices.len(),
            },
        );
        // Aggregated: one release per node; ablation: one per thread.
        let copies = if self.cfg.aggregate_barriers {
            1
        } else {
            self.cfg.threads_per_node
        };
        for q in 1..self.cfg.nodes {
            for _ in 0..copies {
                self.send(
                    0,
                    q,
                    Payload::BarrierRelease {
                        epoch: self.master.epoch(),
                        vt: vt.clone(),
                        notices: notices.clone(),
                    },
                    t,
                );
            }
        }
        self.ctl[0].release_seen = self.master.epoch();
        self.apply_release(0, vt, notices, t);
    }

    fn apply_release(
        &mut self,
        n: usize,
        vt: VectorTime,
        notices: Vec<WriteNotice>,
        t: VirtualTime,
    ) {
        if let Some(started) = self.barrier_arrived_at[n].take() {
            // Node clocks diverge, so the master-side release time can
            // precede a fast node's arrival clock; its stall is then zero.
            let stall = t.max(started).since(started);
            self.hist.barrier_stall_ns.record(stall.as_ns());
        }
        self.apply_notices(n, &notices);
        self.checked_merge(n, &vt, t);
        let woken = self.ctl[n].nb.take_blocked();
        for tid in woken {
            self.make_ready(n, tid, t);
        }
    }

    fn complete_fetch(&mut self, n: usize, page: usize, t: VirtualTime) {
        let mut fetch = self.ctl[n].fetches.remove(&page).expect("fetch exists");
        let mut words = 0usize;
        // Apply in happens-before order: close-sequence, then writer,
        // then the writer-local tag.
        fetch.diffs.sort_by_key(|&(tag, gseq, w, _)| (gseq, w, tag));
        if fetch.diffs.len() >= 2
            && self.inject_hits(|f| match f {
                InjectFault::ReorderDiffApply { nth } => Some(*nth),
                _ => None,
            })
        {
            fetch.diffs.reverse();
        }
        if self.oracle.enabled() {
            let ordered = fetch
                .diffs
                .windows(2)
                .all(|w| (w[0].1, w[0].2, w[0].0) <= (w[1].1, w[1].2, w[1].0));
            self.oracle
                .check(Invariant::DiffApplyOrder, ordered, Some(n), t, || {
                    format!("diffs for p{page} applied out of happens-before order")
                });
        }
        {
            let mut cell = self.cells[n].lock();
            if let Some(base) = fetch.base.take() {
                cell.page_bytes_mut(page).copy_from_slice(&base);
            }
            for (tag, _gseq, w, d) in &fetch.diffs {
                d.apply(cell.page_bytes_mut(page));
                words += d.words_applied();
                let key = (page, *w);
                let e = self.ctl[n].applied_dtag.entry(key).or_insert(0);
                *e = (*e).max(*tag);
            }
        }
        self.stats.diffs_used += fetch.diffs.len() as u64;
        self.trace.record(
            t,
            TraceEvent::FetchComplete {
                node: n,
                page: PageId(page),
                diffs: fetch.diffs.len(),
            },
        );
        // Retire satisfied notices.
        let remaining = {
            let applied: Vec<(usize, u32)> = self.ctl[n]
                .pending
                .get(&page)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&(w, i)| i > self.ctl[n].applied_ivl(page, w))
                        .collect()
                })
                .unwrap_or_default();
            if applied.is_empty() {
                self.ctl[n].pending.remove(&page);
            } else {
                self.ctl[n].pending.insert(page, applied.clone());
            }
            !applied.is_empty()
        };
        {
            let mut cell = self.cells[n].lock();
            cell.state[page] = if remaining {
                PageState::Invalid
            } else {
                PageState::ReadOnly
            };
        }
        // Local consistency cost: protection change + diff application,
        // charged to the faulting node.
        let cost = self.cfg.mprotect
            + SimDuration::from_ns(words as u64 * self.cfg.diff_word_apply.as_ns());
        self.ctl[n].sched.clock = self.ctl[n].sched.clock.max(t) + cost;
        self.ctl[n].breakdown.user += cost;
        self.ctl[n].out_faults -= 1;
        // Histogram sample: fault signal to page usable again, including
        // the local apply cost just charged.
        self.hist
            .fault_fetch_ns
            .record(self.ctl[n].sched.clock.since(fetch.started).as_ns());
        // The faulting node demonstrably uses the page: (re)join the
        // eager protocol's copyset.
        self.copysets[page].add(n);
        self.copysets[page].record_use(n);
        let clock = self.ctl[n].sched.clock;
        for (tid, _write) in fetch.waiters {
            self.make_ready(n, tid, clock);
        }
    }

    // ---- messages --------------------------------------------------------

    fn send(&mut self, from: usize, to: usize, payload: Payload, t: VirtualTime) {
        if from == to {
            self.handle_payload(to, from, payload, t);
            return;
        }
        let kind = payload.kind();
        let bytes = payload.wire_bytes();
        self.net.send(
            t,
            Message::new(NodeId(from), NodeId(to), kind, bytes, payload),
        );
    }

    fn handle_payload(&mut self, n: usize, src: usize, payload: Payload, t: VirtualTime) {
        match payload {
            Payload::PageRequest { page } => {
                let data = self.cells[n].lock().page_bytes(page.0).to_vec();
                self.send(n, src, Payload::PageReply { page, data }, t);
            }
            Payload::PageReply { page, data } => {
                let p = page.0;
                if let Some(f) = self.ctl[n].fetches.get_mut(&p) {
                    f.base = Some(data);
                    f.replies_needed -= 1;
                    if f.replies_needed == 0 {
                        self.complete_fetch(n, p, t);
                    }
                }
            }
            Payload::DiffRequest { page, since } => {
                let _ = self.ensure_extracted(n, page.0);
                let upto = self.ctl[n].log.latest();
                let diffs: Vec<(u32, u64, Diff)> = self.ctl[n]
                    .diff_cache
                    .get(&page.0)
                    .map(|v| {
                        v.iter()
                            .filter(|&&(tag, _, _)| tag > since)
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default();
                self.send(n, src, Payload::DiffReply { page, diffs, upto }, t);
            }
            Payload::DiffReply { page, diffs, upto } => {
                let p = page.0;
                let key = (p, src);
                let e = self.ctl[n].applied_ivl.entry(key).or_insert(0);
                *e = (*e).max(upto);
                if self.cfg.verify {
                    // The applied watermark can run ahead of our vector
                    // time; the race detector mirrors it from this event.
                    self.trace.record(
                        t,
                        TraceEvent::DiffApplied {
                            node: n,
                            page,
                            writer: src,
                            upto,
                        },
                    );
                }
                if let Some(f) = self.ctl[n].fetches.get_mut(&p) {
                    for (tag, gseq, d) in diffs {
                        f.diffs.push((tag, gseq, src, d));
                    }
                    f.replies_needed -= 1;
                    if f.replies_needed == 0 {
                        self.complete_fetch(n, p, t);
                    }
                }
            }
            Payload::LockRequest { lock, acquirer, vt } => {
                self.manager_handle(n, lock, acquirer, vt, t);
            }
            Payload::LockForward { lock, acquirer, vt } => {
                self.forward_at(n, lock, acquirer, vt, t);
            }
            Payload::LockGrant { lock, vt, notices } => {
                if self.oracle.enabled() {
                    // The token is in flight to us: no node may still hold
                    // it cached, and we must have an outstanding request
                    // with a thread waiting — otherwise the wakeup is lost.
                    let owners = (0..self.cfg.nodes)
                        .filter(|&q| self.ctl[q].locks[lock].cached)
                        .count();
                    self.oracle
                        .check(Invariant::LockSingleToken, owners == 0, Some(n), t, || {
                            format!("lock {lock} granted while {owners} node(s) hold the token")
                        });
                    let lk = &self.ctl[n].locks[lock];
                    let has_waiter = lk.requested && !lk.local_queue.is_empty();
                    self.oracle.check(
                        Invariant::LockGrantHasWaiter,
                        has_waiter,
                        Some(n),
                        t,
                        || format!("grant of lock {lock} with no requesting waiter"),
                    );
                    if !has_waiter {
                        return;
                    }
                }
                self.apply_notices(n, &notices);
                self.checked_merge(n, &vt, t);
                self.trace
                    .record(t, TraceEvent::LockGranted { node: n, lock });
                if let Some(started) = self.lock_req_at.remove(&(n, lock)) {
                    let ns = t.since(started).as_ns();
                    match self.lock_hops.remove(&(lock, n)) {
                        Some(3) => {
                            self.hist.lock_3hop_ns.record(ns);
                            self.attr.lock_mut(lock).three_hop += 1;
                        }
                        _ => self.hist.lock_2hop_ns.record(ns),
                    }
                }
                let tid = self.ctl[n].locks[lock].apply_grant();
                self.ctl[n].out_locks -= 1;
                self.make_ready(n, tid, t);
            }
            Payload::BarrierArrive {
                epoch,
                node,
                vt,
                notices,
            } => {
                self.oracle
                    .check(Invariant::BarrierMasterRouting, n == 0, Some(n), t, || {
                        format!("n{node}'s arrival delivered to n{n}, not the master")
                    });
                self.oracle.check(
                    Invariant::BarrierEpochAgreement,
                    epoch == self.master.epoch(),
                    Some(node),
                    t,
                    || {
                        format!(
                            "n{node} arrived for episode {epoch}, master at {}",
                            self.master.epoch()
                        )
                    },
                );
                self.master_arrive(node, vt, notices, t);
            }
            Payload::ReduceArrive { node, op, value } => {
                debug_assert_eq!(n, 0, "reduce arrivals go to the master");
                self.reduce_arrive_at_master(node, op, value, t);
            }
            Payload::ReduceRelease { value } => {
                self.apply_reduce_release(n, value, t);
            }
            Payload::UpdatePush { page, diff, upto } => {
                let p = page.0;
                if self.ctl[n].fetches.contains_key(&p) {
                    // A lazy fetch is in flight; let it win (its reply
                    // includes this diff from the writer's cache) rather
                    // than risk applying out of order.
                    return;
                }
                let has_copy = self.cells[n].lock().state[p].has_copy();
                if !has_copy {
                    return;
                }
                let (tag, _gseq, d) = diff;
                {
                    let mut cell = self.cells[n].lock();
                    d.apply(cell.page_bytes_mut(p));
                }
                self.stats.diffs_used += 1;
                let kd = (p, src);
                let e = self.ctl[n].applied_dtag.entry(kd).or_insert(0);
                *e = (*e).max(tag);
                let e = self.ctl[n].applied_ivl.entry(kd).or_insert(0);
                *e = (*e).max(upto);
                if self.cfg.verify {
                    self.trace.record(
                        t,
                        TraceEvent::DiffApplied {
                            node: n,
                            page,
                            writer: src,
                            upto,
                        },
                    );
                }
                // Retire satisfied notices and revalidate if nothing is
                // pending any more.
                let remaining: Vec<(usize, u32)> = self.ctl[n]
                    .pending
                    .get(&p)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&(w, i)| i > self.ctl[n].applied_ivl(p, w))
                            .collect()
                    })
                    .unwrap_or_default();
                let mut cell = self.cells[n].lock();
                if remaining.is_empty() {
                    self.ctl[n].pending.remove(&p);
                    if cell.state[p] == PageState::Invalid {
                        cell.state[p] = PageState::ReadOnly;
                    }
                } else {
                    self.ctl[n].pending.insert(p, remaining);
                }
            }
            Payload::DropCopy { .. } => {
                // Informational: the writer stopped pushing to us. Our
                // copy stays valid until a write notice invalidates it;
                // the next fault re-registers us in the copyset.
            }
            Payload::BarrierRelease { epoch, vt, notices } => {
                // Duplicate releases (non-aggregated ablation) are stale
                // after the first: drop them so they cannot wake waiters
                // of a later episode.
                if epoch <= self.ctl[n].release_seen {
                    return;
                }
                self.ctl[n].release_seen = epoch;
                self.apply_release(n, vt, notices, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CvmConfig;

    /// Smoke test: two nodes, two threads each, write/barrier/read.
    #[test]
    fn spmd_write_barrier_read() {
        let mut b = CvmBuilder::new(CvmConfig::small(2, 2));
        let v = b.alloc::<u64>(64);
        let report = b.run(move |ctx| {
            ctx.startup_done();
            let me = ctx.global_id() as u64;
            let (lo, hi) = ctx.partition(64);
            for i in lo..hi {
                v.write(ctx, i, me + 1);
            }
            ctx.barrier();
            let mut sum = 0;
            for i in 0..64 {
                sum += v.read(ctx, i);
            }
            // 4 threads x 16 elements each, values 1..=4.
            assert_eq!(sum, 16 * (1 + 2 + 3 + 4));
        });
        assert_eq!(report.stats.barriers_crossed, 1);
        assert!(report.stats.remote_faults > 0);
        assert!(report.stats.diffs_used > 0);
    }

    #[test]
    fn lock_protected_counter_is_exact() {
        let mut b = CvmBuilder::new(CvmConfig::small(3, 2));
        let v = b.alloc::<u64>(1);
        let report = b.run(move |ctx| {
            if ctx.global_id() == 0 {
                v.write(ctx, 0, 0);
            }
            ctx.startup_done();
            for _ in 0..5 {
                ctx.acquire(7);
                let x = v.read(ctx, 0);
                v.write(ctx, 0, x + 1);
                ctx.release(7);
            }
            ctx.barrier();
            assert_eq!(v.read(ctx, 0), 30, "6 threads x 5 increments");
        });
        assert!(report.stats.remote_locks > 0);
        assert!(report.stats.barriers_crossed >= 1);
    }

    #[test]
    fn single_node_needs_no_messages() {
        let mut b = CvmBuilder::new(CvmConfig::small(1, 4));
        let v = b.alloc::<f64>(256);
        let report = b.run(move |ctx| {
            ctx.startup_done();
            let (lo, hi) = ctx.partition(256);
            for i in lo..hi {
                v.write(ctx, i, 1.0);
            }
            ctx.barrier();
            let total: f64 = (0..256).map(|i| v.read(ctx, i)).sum();
            assert_eq!(total, 256.0);
        });
        assert_eq!(report.net.total_count(), 0);
        assert_eq!(report.stats.remote_faults, 0);
    }

    #[test]
    fn local_reduce_aggregates_per_node() {
        let mut b = CvmBuilder::new(CvmConfig::small(2, 3));
        let v = b.alloc::<f64>(2);
        let report = b.run(move |ctx| {
            ctx.startup_done();
            let r = ctx.local_reduce(crate::barrier::ReduceOp::Sum, 1.0);
            assert_eq!(r, 3.0, "three local threads contribute 1.0 each");
            if ctx.local_id() == 0 {
                v.write(ctx, ctx.node(), r);
            }
            ctx.barrier();
            assert_eq!(v.read(ctx, 0) + v.read(ctx, 1), 6.0);
        });
        assert_eq!(report.stats.local_barriers, 2);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let mut b = CvmBuilder::new(CvmConfig::small(2, 2));
            let v = b.alloc::<u64>(512);
            b.run(move |ctx| {
                ctx.startup_done();
                let (lo, hi) = ctx.partition(512);
                for it in 0..3 {
                    for i in lo..hi {
                        v.write(ctx, i, it + i as u64);
                    }
                    ctx.barrier();
                    let _ = v.read(ctx, (lo + 256) % 512);
                    ctx.barrier();
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.net, b.net);
        assert_eq!(a.total_time, b.total_time);
    }

    #[test]
    fn global_reduce_combines_across_cluster() {
        let b = CvmBuilder::new(CvmConfig::small(3, 2));
        let report = b.run(move |ctx| {
            ctx.startup_done();
            let me = ctx.global_id() as f64;
            let sum = ctx.global_reduce(crate::barrier::ReduceOp::Sum, me + 1.0);
            assert_eq!(sum, 21.0, "1+2+...+6");
            let max = ctx.global_reduce(crate::barrier::ReduceOp::Max, me);
            assert_eq!(max, 5.0);
            let min = ctx.global_reduce(crate::barrier::ReduceOp::Min, me);
            assert_eq!(min, 0.0);
        });
        assert_eq!(report.stats.global_reduces, 3);
        // One arrival + one release per non-master node per episode.
        use cvm_net::MsgKind;
        assert_eq!(report.net.kind_count(MsgKind::BarrierArrive), 3 * 2);
        assert_eq!(report.net.kind_count(MsgKind::BarrierRelease), 3 * 2);
    }

    #[test]
    fn lifo_schedule_is_deterministic_and_correct() {
        let run = |lifo: bool| {
            let mut cfg = CvmConfig::small(2, 3);
            cfg.lifo_schedule = lifo;
            let mut b = CvmBuilder::new(cfg);
            let v = b.alloc::<u64>(128);
            b.run(move |ctx| {
                ctx.startup_done();
                let (lo, hi) = ctx.partition(128);
                for r in 0..3u64 {
                    for i in lo..hi {
                        v.write(ctx, i, r + i as u64);
                    }
                    ctx.barrier();
                }
                let sum: u64 = (0..128).map(|i| v.read(ctx, i)).sum();
                assert_eq!(sum, (0..128u64).map(|i| 2 + i).sum::<u64>());
            })
        };
        let fifo = run(false);
        let lifo = run(true);
        // Both complete correctly; scheduling order differs, so the exact
        // switch pattern may differ while total work matches.
        assert_eq!(fifo.stats.barriers_crossed, lifo.stats.barriers_crossed);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_barrier_participant_deadlocks() {
        let b = CvmBuilder::new(CvmConfig::small(2, 1));
        let _ = b.run(move |ctx| {
            ctx.startup_done();
            if ctx.global_id() == 0 {
                ctx.barrier(); // node 1 never arrives
            }
        });
    }
}
