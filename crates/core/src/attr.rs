//! Per-resource attribution: which pages and locks the run's remote
//! latency actually went to.
//!
//! The paper's Table 5 case study works exactly this way — find the few
//! structures behind most of the misses, restructure them, re-measure.
//! [`ResourceAttr`] keeps per-page fault/invalidation/diff counters and
//! per-lock acquisition/contention counters in `BTreeMap`s (deterministic
//! iteration order → byte-stable JSON), and renders top-N "hot" tables.

use std::collections::BTreeMap;
use std::fmt;

use cvm_sim::json::JsonValue;

/// Counters for one shared page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageAttr {
    /// Remote faults taken on the page.
    pub faults: u64,
    /// Times a resident copy was invalidated by a write notice.
    pub invalidations: u64,
    /// Diffs extracted from this page's twins.
    pub diffs_created: u64,
    /// Total modified bytes across those diffs.
    pub diff_bytes: u64,
    /// Total virtual time inside RemoteFault spans on this page (0 when
    /// span recording is off): *where the fault latency went*, not just
    /// how often it struck.
    pub fault_span_ns: u64,
}

impl PageAttr {
    /// Heat score used to rank hot pages: protocol events on the page.
    pub fn heat(&self) -> u64 {
        self.faults + self.invalidations + self.diffs_created
    }
}

/// Counters for one global lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockAttr {
    /// Acquires that required a network round-trip.
    pub remote_acquires: u64,
    /// Acquires satisfied by the locally cached token.
    pub local_acquires: u64,
    /// Acquires satisfied by a local queue hand-off at release.
    pub local_handoffs: u64,
    /// Threads that blocked behind an already-held/requested lock.
    pub contended: u64,
    /// Remote acquires that took the 3-hop path (manager forwarded to the
    /// current owner).
    pub three_hop: u64,
    /// Total virtual time inside LockAcquire spans on this lock (0 when
    /// span recording is off).
    pub acquire_span_ns: u64,
}

impl LockAttr {
    /// All acquisitions, however satisfied.
    pub fn total_acquires(&self) -> u64 {
        self.remote_acquires + self.local_acquires + self.local_handoffs
    }

    /// Heat score used to rank hot locks: remote traffic plus contention.
    pub fn heat(&self) -> u64 {
        self.remote_acquires + self.contended
    }
}

/// Per-page and per-lock attribution for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceAttr {
    pages: BTreeMap<usize, PageAttr>,
    locks: BTreeMap<usize, LockAttr>,
}

impl ResourceAttr {
    /// Creates empty attribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all counters (used at `startup_done`).
    pub fn reset(&mut self) {
        self.pages.clear();
        self.locks.clear();
    }

    /// Mutable counters for `page`, created on first touch.
    pub fn page_mut(&mut self, page: usize) -> &mut PageAttr {
        self.pages.entry(page).or_default()
    }

    /// Mutable counters for `lock`, created on first touch.
    pub fn lock_mut(&mut self, lock: usize) -> &mut LockAttr {
        self.locks.entry(lock).or_default()
    }

    /// Counters for `page`, if it was ever touched.
    pub fn page(&self, page: usize) -> Option<&PageAttr> {
        self.pages.get(&page)
    }

    /// Counters for `lock`, if it was ever touched.
    pub fn lock(&self, lock: usize) -> Option<&LockAttr> {
        self.locks.get(&lock)
    }

    /// Number of distinct pages with any activity.
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// Number of distinct locks with any activity.
    pub fn locks_touched(&self) -> usize {
        self.locks.len()
    }

    /// The `n` hottest pages, descending by [`PageAttr::heat`], ties by
    /// page id ascending (deterministic).
    pub fn top_pages(&self, n: usize) -> Vec<(usize, PageAttr)> {
        let mut rows: Vec<(usize, PageAttr)> = self.pages.iter().map(|(&p, &a)| (p, a)).collect();
        rows.sort_by(|a, b| b.1.heat().cmp(&a.1.heat()).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// The `n` hottest locks, descending by [`LockAttr::heat`], ties by
    /// lock id ascending (deterministic).
    pub fn top_locks(&self, n: usize) -> Vec<(usize, LockAttr)> {
        let mut rows: Vec<(usize, LockAttr)> = self.locks.iter().map(|(&l, &a)| (l, a)).collect();
        rows.sort_by(|a, b| b.1.heat().cmp(&a.1.heat()).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// JSON form: `{pages_touched, locks_touched, hot_pages: [...],
    /// hot_locks: [...]}` with the top `top_n` of each.
    pub fn to_json(&self, top_n: usize) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.set("pages_touched", self.pages_touched());
        obj.set("locks_touched", self.locks_touched());
        let mut hot_pages = JsonValue::array();
        for (p, a) in self.top_pages(top_n) {
            let mut row = JsonValue::object();
            row.set("page", p);
            row.set("faults", a.faults);
            row.set("invalidations", a.invalidations);
            row.set("diffs_created", a.diffs_created);
            row.set("diff_bytes", a.diff_bytes);
            row.set("fault_span_ns", a.fault_span_ns);
            hot_pages.push(row);
        }
        obj.set("hot_pages", hot_pages);
        let mut hot_locks = JsonValue::array();
        for (l, a) in self.top_locks(top_n) {
            let mut row = JsonValue::object();
            row.set("lock", l);
            row.set("remote_acquires", a.remote_acquires);
            row.set("local_acquires", a.local_acquires);
            row.set("local_handoffs", a.local_handoffs);
            row.set("contended", a.contended);
            row.set("three_hop", a.three_hop);
            row.set("acquire_span_ns", a.acquire_span_ns);
            hot_locks.push(row);
        }
        obj.set("hot_locks", hot_locks);
        obj
    }

    /// Renders the top-`n` hot-page and hot-lock tables as text.
    pub fn render(&self, n: usize) -> String {
        format!("{}", Render { attr: self, n })
    }
}

struct Render<'a> {
    attr: &'a ResourceAttr,
    n: usize,
}

impl fmt::Display for Render<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pages = self.attr.top_pages(self.n);
        if !pages.is_empty() {
            writeln!(
                f,
                "hot pages ({} touched): {:>6} {:>8} {:>8} {:>8} {:>10}",
                self.attr.pages_touched(),
                "page",
                "faults",
                "invals",
                "diffs",
                "diff B"
            )?;
            for (p, a) in pages {
                writeln!(
                    f,
                    "{:>32} {:>8} {:>8} {:>8} {:>10}",
                    format!("p{p}"),
                    a.faults,
                    a.invalidations,
                    a.diffs_created,
                    a.diff_bytes
                )?;
            }
        }
        let locks = self.attr.top_locks(self.n);
        if !locks.is_empty() {
            writeln!(
                f,
                "hot locks ({} touched): {:>6} {:>8} {:>8} {:>8} {:>8}",
                self.attr.locks_touched(),
                "lock",
                "remote",
                "local",
                "queued",
                "3hop"
            )?;
            for (l, a) in locks {
                writeln!(
                    f,
                    "{:>32} {:>8} {:>8} {:>8} {:>8}",
                    format!("L{l}"),
                    a.remote_acquires,
                    a.local_acquires + a.local_handoffs,
                    a.contended,
                    a.three_hop
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_pages_rank_by_heat_then_id() {
        let mut attr = ResourceAttr::new();
        attr.page_mut(5).faults = 3;
        attr.page_mut(2).faults = 3;
        attr.page_mut(9).faults = 10;
        let top = attr.top_pages(3);
        assert_eq!(top[0].0, 9);
        assert_eq!(top[1].0, 2, "tie broken by lower page id");
        assert_eq!(top[2].0, 5);
    }

    #[test]
    fn top_n_truncates() {
        let mut attr = ResourceAttr::new();
        for p in 0..20 {
            attr.page_mut(p).faults = p as u64;
        }
        assert_eq!(attr.top_pages(5).len(), 5);
        assert_eq!(attr.pages_touched(), 20);
    }

    #[test]
    fn json_shape() {
        let mut attr = ResourceAttr::new();
        attr.page_mut(3).faults = 2;
        attr.lock_mut(7).remote_acquires = 4;
        attr.lock_mut(7).three_hop = 1;
        let j = attr.to_json(10);
        assert_eq!(j.get("pages_touched").unwrap().as_u64(), Some(1));
        let hp = j.get("hot_pages").unwrap().as_array().unwrap();
        assert_eq!(hp[0].get("page").unwrap().as_u64(), Some(3));
        let hl = j.get("hot_locks").unwrap().as_array().unwrap();
        assert_eq!(hl[0].get("three_hop").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn render_mentions_hot_resources() {
        let mut attr = ResourceAttr::new();
        attr.page_mut(3).faults = 2;
        attr.lock_mut(1).contended = 5;
        let text = attr.render(4);
        assert!(text.contains("hot pages"));
        assert!(text.contains("p3"));
        assert!(text.contains("L1"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut attr = ResourceAttr::new();
        attr.page_mut(0).faults = 1;
        attr.lock_mut(0).contended = 1;
        attr.reset();
        assert_eq!(attr, ResourceAttr::new());
    }
}
