//! DSM protocol message payloads.
//!
//! These ride inside [`cvm_net::Message`]; the wire sizes used for latency
//! and bandwidth accounting are computed here from the logical content
//! (vector timestamps, write notices, diff runs, page bytes) plus a small
//! fixed header, mirroring CVM's UDP packet layout closely enough for
//! Table 2's bandwidth column.

use cvm_net::MsgKind;

use crate::barrier::ReduceOp;
use crate::diff::Diff;
use crate::interval::{VectorTime, WriteNotice};
use crate::page::PageId;

/// Fixed per-message header estimate (UDP/IP + CVM headers).
pub const HEADER_BYTES: usize = 64;

/// Protocol payloads exchanged between nodes.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Ask the page's home for a full copy (first access on this node).
    PageRequest {
        /// Page wanted.
        page: PageId,
    },
    /// Full page copy.
    PageReply {
        /// Page carried.
        page: PageId,
        /// The home node's current contents.
        data: Vec<u8>,
    },
    /// Ask a writer for its diffs of `page` newer than `since`.
    DiffRequest {
        /// Page wanted.
        page: PageId,
        /// Requester has already applied this writer's diffs tagged
        /// `<= since`.
        since: u32,
    },
    /// Diffs from one writer, tagged with their closing interval.
    DiffReply {
        /// Page carried.
        page: PageId,
        /// `(interval tag, close sequence, diff)` in ascending tag order.
        /// The close sequence totally orders interval closes consistently
        /// with happens-before (the real CVM ships vector timestamps and
        /// applies diffs "in increasing timestamp order"; the sequence
        /// number is an equivalent total-order extension).
        diffs: Vec<(u32, u64, Diff)>,
        /// Coverage watermark: every interval of this writer up to `upto`
        /// is reflected (silent stores produce no diff but still advance
        /// the watermark, so the requester can retire its write notices).
        upto: u32,
    },
    /// Lock acquire request, sent to the lock's static manager.
    LockRequest {
        /// Lock index.
        lock: usize,
        /// Requesting node.
        acquirer: usize,
        /// Requester's vector time (for write-notice computation).
        vt: VectorTime,
    },
    /// Manager forwarding the request to the last owner.
    LockForward {
        /// Lock index.
        lock: usize,
        /// Requesting node.
        acquirer: usize,
        /// Requester's vector time.
        vt: VectorTime,
    },
    /// Ownership transfer to the acquirer, with consistency information.
    LockGrant {
        /// Lock index.
        lock: usize,
        /// Granter's vector time.
        vt: VectorTime,
        /// Write notices for intervals the acquirer has not seen.
        notices: Vec<WriteNotice>,
    },
    /// Per-node aggregated barrier arrival at the master.
    BarrierArrive {
        /// Barrier episode number.
        epoch: u32,
        /// Arriving node.
        node: usize,
        /// Arriving node's vector time.
        vt: VectorTime,
        /// Write notices for the node's intervals since its last barrier.
        notices: Vec<WriteNotice>,
    },
    /// Per-node aggregated global-reduction arrival at the master.
    ReduceArrive {
        /// Arriving node.
        node: usize,
        /// Reduction operator.
        op: ReduceOp,
        /// The node's combined contribution.
        value: f64,
    },
    /// Global-reduction result fan-out from the master.
    ReduceRelease {
        /// The system-wide combined value.
        value: f64,
    },
    /// Eager-protocol push: a writer's new diff delivered to a copyset
    /// member at interval close.
    UpdatePush {
        /// Page carried.
        page: PageId,
        /// `(interval tag, close sequence, diff)`.
        diff: (u32, u64, Diff),
        /// Tag of the writer's *previous* diff of this page (0 if none).
        /// The receiver applies the push only when its copy already
        /// reflects that tag — a gap means an earlier push was refused or
        /// reordered, and applying this one would let `upto` retire a
        /// notice whose data never arrived.
        prev: u32,
        /// The writer's latest closed interval (retires notices).
        upto: u32,
        /// Causal base: the highest close sequence among diffs the writer
        /// knew to touch the words this diff writes (a lock-protected
        /// read-modify-write chains through here). A receiver whose own
        /// version of those words is behind this is missing a causal
        /// predecessor and must refuse the push — applying it would let
        /// the recovery fetch later patch the *older* diff over this
        /// newer one, resurrecting overwritten words. Word-disjoint
        /// concurrent diffs carry independent bases and never block each
        /// other.
        base: u64,
    },
    /// Copyset pruning: the named node stops receiving pushes for `page`
    /// (after too many consecutive unused updates).
    DropCopy {
        /// Page concerned.
        page: PageId,
        /// Node leaving the copyset.
        node: usize,
    },
    /// Home-based protocol: a writer flushing one closed interval of
    /// `page` to the page's home. Sent even when the interval's diff is
    /// empty (silent stores), so the home's coverage watermark always
    /// advances to `upto`.
    HomeFlush {
        /// Page concerned.
        page: PageId,
        /// `(interval tag, close sequence, diff)` — `None` for a silent
        /// interval.
        diff: Option<(u32, u64, Diff)>,
        /// The writer's latest closed interval (coverage watermark).
        upto: u32,
    },
    /// Home-based protocol: a faulting node asking the home for the
    /// up-to-date page, once the home has absorbed the named intervals.
    HomeRequest {
        /// Page wanted.
        page: PageId,
        /// `(writer, interval)` pairs the reply must cover — the
        /// requester's pending write notices plus its own last flush.
        needs: Vec<(usize, u32)>,
    },
    /// Home-based protocol: the home's reply — the whole current page in
    /// one message.
    HomeReply {
        /// Page carried.
        page: PageId,
        /// The home's current page contents.
        data: Vec<u8>,
        /// Per writer: the highest interval reflected in `data`, so the
        /// requester can retire its write notices.
        watermarks: Vec<(usize, u32)>,
    },
    /// Barrier release fan-out from the master.
    BarrierRelease {
        /// Barrier episode number.
        epoch: u32,
        /// Merged vector time of all nodes.
        vt: VectorTime,
        /// Union of all nodes' notices for this episode.
        notices: Vec<WriteNotice>,
    },
}

impl Payload {
    /// The wire classification of this payload.
    pub fn kind(&self) -> MsgKind {
        match self {
            Payload::PageRequest { .. } => MsgKind::PageRequest,
            Payload::PageReply { .. } => MsgKind::PageReply,
            Payload::DiffRequest { .. } => MsgKind::DiffRequest,
            Payload::DiffReply { .. } => MsgKind::DiffReply,
            Payload::LockRequest { .. } => MsgKind::LockRequest,
            Payload::LockForward { .. } => MsgKind::LockForward,
            Payload::LockGrant { .. } => MsgKind::LockGrant,
            Payload::BarrierArrive { .. } => MsgKind::BarrierArrive,
            Payload::ReduceArrive { .. } => MsgKind::BarrierArrive,
            Payload::UpdatePush { .. } => MsgKind::UpdatePush,
            Payload::DropCopy { .. } => MsgKind::DropCopy,
            Payload::HomeFlush { .. } => MsgKind::HomeFlush,
            Payload::HomeRequest { .. } => MsgKind::HomeRequest,
            Payload::HomeReply { .. } => MsgKind::HomeReply,
            Payload::ReduceRelease { .. } => MsgKind::BarrierRelease,
            Payload::BarrierRelease { .. } => MsgKind::BarrierRelease,
        }
    }

    /// Modelled wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES
            + match self {
                Payload::PageRequest { .. } => 8,
                Payload::PageReply { data, .. } => data.len(),
                Payload::DiffRequest { .. } => 12,
                Payload::DiffReply { diffs, .. } => {
                    diffs.iter().map(|(_, _, d)| 12 + d.wire_bytes()).sum()
                }
                Payload::LockRequest { vt, .. } | Payload::LockForward { vt, .. } => {
                    8 + vt.wire_bytes()
                }
                Payload::LockGrant { vt, notices, .. } => {
                    8 + vt.wire_bytes() + notices.len() * WriteNotice::WIRE_BYTES
                }
                Payload::BarrierArrive { vt, notices, .. } => {
                    8 + vt.wire_bytes() + notices.len() * WriteNotice::WIRE_BYTES
                }
                Payload::BarrierRelease { vt, notices, .. } => {
                    8 + vt.wire_bytes() + notices.len() * WriteNotice::WIRE_BYTES
                }
                Payload::ReduceArrive { .. } => 24,
                Payload::ReduceRelease { .. } => 16,
                Payload::UpdatePush { diff, .. } => 28 + diff.2.wire_bytes(),
                Payload::DropCopy { .. } => 12,
                Payload::HomeFlush { diff, .. } => {
                    16 + diff.as_ref().map_or(0, |(_, _, d)| d.wire_bytes())
                }
                Payload::HomeRequest { needs, .. } => 12 + needs.len() * 8,
                Payload::HomeReply {
                    data, watermarks, ..
                } => 8 + data.len() + watermarks.len() * 8,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_payloads() {
        let vt = VectorTime::new(2);
        assert_eq!(
            Payload::PageRequest { page: PageId(0) }.kind(),
            MsgKind::PageRequest
        );
        assert_eq!(
            Payload::LockGrant {
                lock: 0,
                vt: vt.clone(),
                notices: vec![]
            }
            .kind(),
            MsgKind::LockGrant
        );
        assert_eq!(
            Payload::BarrierArrive {
                epoch: 0,
                node: 1,
                vt,
                notices: vec![]
            }
            .kind(),
            MsgKind::BarrierArrive
        );
    }

    #[test]
    fn page_reply_dominates_small_messages() {
        let small = Payload::PageRequest { page: PageId(0) }.wire_bytes();
        let big = Payload::PageReply {
            page: PageId(0),
            data: vec![0; 8192],
        }
        .wire_bytes();
        assert!(big > 8192 && small < 128);
    }

    #[test]
    fn notice_bytes_scale() {
        let vt = VectorTime::new(8);
        let mk = |n: usize| Payload::BarrierRelease {
            epoch: 1,
            vt: vt.clone(),
            notices: vec![
                WriteNotice {
                    writer: 0,
                    interval: 1,
                    page: PageId(0)
                };
                n
            ],
        };
        assert!(mk(100).wire_bytes() > mk(1).wire_bytes());
        assert_eq!(
            mk(100).wire_bytes() - mk(0).wire_bytes(),
            100 * WriteNotice::WIRE_BYTES
        );
    }
}
