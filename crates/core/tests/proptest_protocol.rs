//! Property-based tests on the protocol's core data structures.

use cvm_dsm::diff::DIFF_WORD;
use cvm_dsm::page::PageId;
use cvm_dsm::{Diff, VectorTime};
use proptest::prelude::*;

const PAGE: usize = 512; // small "page" for fast exploration

fn arb_page() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), PAGE)
}

/// A set of word-aligned mutations to apply to a page.
fn arb_mutations() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..PAGE / DIFF_WORD, any::<u64>()), 0..40)
}

fn apply_mutations(page: &mut [u8], muts: &[(usize, u64)]) {
    for &(w, v) in muts {
        page[w * DIFF_WORD..(w + 1) * DIFF_WORD].copy_from_slice(&v.to_le_bytes());
    }
}

proptest! {
    /// diff(twin, current) applied to the twin reconstructs current,
    /// for arbitrary initial contents and mutation sets.
    #[test]
    fn diff_roundtrip(twin in arb_page(), muts in arb_mutations()) {
        let mut current = twin.clone();
        apply_mutations(&mut current, &muts);
        let d = Diff::create(PageId(0), &twin, &current);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, current);
    }

    /// The diff is minimal: its modified byte count never exceeds the
    /// words actually touched, and an empty mutation set produces an
    /// empty diff.
    #[test]
    fn diff_is_bounded_by_mutations(twin in arb_page(), muts in arb_mutations()) {
        let mut current = twin.clone();
        apply_mutations(&mut current, &muts);
        let d = Diff::create(PageId(0), &twin, &current);
        let distinct: std::collections::HashSet<usize> =
            muts.iter().map(|&(w, _)| w).collect();
        prop_assert!(d.modified_bytes() <= distinct.len() * DIFF_WORD);
        if muts.is_empty() {
            prop_assert!(d.is_empty());
        }
    }

    /// Concurrent diffs from writers touching disjoint word sets never
    /// overlap, and applying them in either order yields the same page —
    /// the multiple-writer merge guarantee for race-free programs.
    #[test]
    fn disjoint_concurrent_diffs_commute(
        base in arb_page(),
        muts_a in arb_mutations(),
        muts_b in arb_mutations(),
    ) {
        // Make B's words disjoint from A's by offsetting modulo the page.
        let words_a: std::collections::HashSet<usize> =
            muts_a.iter().map(|&(w, _)| w).collect();
        let muts_b: Vec<(usize, u64)> = muts_b
            .into_iter()
            .filter(|(w, _)| !words_a.contains(w))
            .collect();
        let mut page_a = base.clone();
        apply_mutations(&mut page_a, &muts_a);
        let mut page_b = base.clone();
        apply_mutations(&mut page_b, &muts_b);
        let da = Diff::create(PageId(0), &base, &page_a);
        let db = Diff::create(PageId(0), &base, &page_b);
        prop_assert!(!da.overlaps(&db));
        let mut ab = base.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = base.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        prop_assert_eq!(ab, ba);
    }

    /// Vector-time lattice laws: merge is commutative, associative,
    /// idempotent, and produces an upper bound.
    #[test]
    fn vector_time_lattice_laws(
        a in proptest::collection::vec(0u32..1000, 4),
        b in proptest::collection::vec(0u32..1000, 4),
        c in proptest::collection::vec(0u32..1000, 4),
    ) {
        let mk = |v: &[u32]| {
            let mut t = VectorTime::new(v.len());
            for (i, &x) in v.iter().enumerate() {
                t.advance(i, x);
            }
            t
        };
        let (ta, tb, tc) = (mk(&a), mk(&b), mk(&c));
        // Commutative.
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(&ab, &ba);
        // Associative.
        let mut ab_c = ab.clone();
        ab_c.merge(&tc);
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut a_bc = ta.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Idempotent.
        let mut aa = ta.clone();
        aa.merge(&ta);
        prop_assert_eq!(&aa, &ta);
        // Upper bound.
        prop_assert!(ab.covers(&ta) && ab.covers(&tb));
    }

    /// `covers` is a partial order compatible with merge: merge(a,b)
    /// covers x iff a-part and b-part constraints hold pointwise.
    #[test]
    fn covers_consistent_with_merge(
        a in proptest::collection::vec(0u32..100, 3),
        b in proptest::collection::vec(0u32..100, 3),
    ) {
        let mk = |v: &[u32]| {
            let mut t = VectorTime::new(v.len());
            for (i, &x) in v.iter().enumerate() {
                t.advance(i, x);
            }
            t
        };
        let (ta, tb) = (mk(&a), mk(&b));
        if ta.covers(&tb) {
            let mut m = ta.clone();
            m.merge(&tb);
            prop_assert_eq!(m, ta, "merge with a covered time is identity");
        }
    }

    /// Block partition: covers everything exactly once, contiguously,
    /// with sizes differing by at most one.
    #[test]
    fn partition_properties(parts in 1usize..40, len in 0usize..5000) {
        let mut prev_hi = 0;
        let mut min_size = usize::MAX;
        let mut max_size = 0;
        for owner in 0..parts {
            let (lo, hi) = cvm_dsm::ctx::partition_for(owner, parts, len);
            prop_assert_eq!(lo, prev_hi);
            prop_assert!(hi >= lo);
            min_size = min_size.min(hi - lo);
            max_size = max_size.max(hi - lo);
            prev_hi = hi;
        }
        prop_assert_eq!(prev_hi, len);
        prop_assert!(max_size - min_size <= 1, "balanced within one item");
    }
}
