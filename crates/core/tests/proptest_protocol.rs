//! Randomized property tests on the protocol's core data structures,
//! driven by the deterministic `SimRng` so every run explores the same
//! cases and failures reproduce exactly.

use cvm_dsm::diff::DIFF_WORD;
use cvm_dsm::page::PageId;
use cvm_dsm::{Diff, VectorTime};
use cvm_sim::SimRng;

const PAGE: usize = 512; // small "page" for fast exploration
const CASES: usize = 200;

fn rand_page(rng: &mut SimRng) -> Vec<u8> {
    (0..PAGE).map(|_| rng.below(256) as u8).collect()
}

/// A set of word-aligned mutations to apply to a page.
fn rand_mutations(rng: &mut SimRng) -> Vec<(usize, u64)> {
    let n = rng.below(40) as usize;
    (0..n)
        .map(|_| {
            (
                rng.below((PAGE / DIFF_WORD) as u64) as usize,
                rng.next_u64(),
            )
        })
        .collect()
}

fn apply_mutations(page: &mut [u8], muts: &[(usize, u64)]) {
    for &(w, v) in muts {
        page[w * DIFF_WORD..(w + 1) * DIFF_WORD].copy_from_slice(&v.to_le_bytes());
    }
}

fn rand_vt(rng: &mut SimRng, len: usize, bound: u64) -> VectorTime {
    let mut t = VectorTime::new(len);
    for i in 0..len {
        t.advance(i, rng.below(bound) as u32);
    }
    t
}

/// diff(twin, current) applied to the twin reconstructs current, for
/// arbitrary initial contents and mutation sets.
#[test]
fn diff_roundtrip() {
    let mut rng = SimRng::seed_from(0xD1FF_0001);
    for _ in 0..CASES {
        let twin = rand_page(&mut rng);
        let muts = rand_mutations(&mut rng);
        let mut current = twin.clone();
        apply_mutations(&mut current, &muts);
        let d = Diff::create(PageId(0), &twin, &current);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, current);
    }
}

/// The diff is minimal: its modified byte count never exceeds the words
/// actually touched, and an empty mutation set produces an empty diff.
#[test]
fn diff_is_bounded_by_mutations() {
    let mut rng = SimRng::seed_from(0xD1FF_0002);
    for _ in 0..CASES {
        let twin = rand_page(&mut rng);
        let muts = rand_mutations(&mut rng);
        let mut current = twin.clone();
        apply_mutations(&mut current, &muts);
        let d = Diff::create(PageId(0), &twin, &current);
        let distinct: std::collections::HashSet<usize> = muts.iter().map(|&(w, _)| w).collect();
        assert!(d.modified_bytes() <= distinct.len() * DIFF_WORD);
        if muts.is_empty() {
            assert!(d.is_empty());
        }
    }
}

/// Concurrent diffs from writers touching disjoint word sets never
/// overlap, and applying them in either order yields the same page — the
/// multiple-writer merge guarantee for race-free programs.
#[test]
fn disjoint_concurrent_diffs_commute() {
    let mut rng = SimRng::seed_from(0xD1FF_0003);
    for _ in 0..CASES {
        let base = rand_page(&mut rng);
        let muts_a = rand_mutations(&mut rng);
        // Make B's words disjoint from A's by filtering.
        let words_a: std::collections::HashSet<usize> = muts_a.iter().map(|&(w, _)| w).collect();
        let muts_b: Vec<(usize, u64)> = rand_mutations(&mut rng)
            .into_iter()
            .filter(|(w, _)| !words_a.contains(w))
            .collect();
        let mut page_a = base.clone();
        apply_mutations(&mut page_a, &muts_a);
        let mut page_b = base.clone();
        apply_mutations(&mut page_b, &muts_b);
        let da = Diff::create(PageId(0), &base, &page_a);
        let db = Diff::create(PageId(0), &base, &page_b);
        assert!(!da.overlaps(&db));
        let mut ab = base.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = base.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        assert_eq!(ab, ba);
    }
}

/// Vector-time lattice laws: merge is commutative, associative,
/// idempotent, and produces an upper bound.
#[test]
fn vector_time_lattice_laws() {
    let mut rng = SimRng::seed_from(0xD1FF_0004);
    for _ in 0..CASES {
        let ta = rand_vt(&mut rng, 4, 1000);
        let tb = rand_vt(&mut rng, 4, 1000);
        let tc = rand_vt(&mut rng, 4, 1000);
        // Commutative.
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        assert_eq!(&ab, &ba);
        // Associative.
        let mut ab_c = ab.clone();
        ab_c.merge(&tc);
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut a_bc = ta.clone();
        a_bc.merge(&bc);
        assert_eq!(&ab_c, &a_bc);
        // Idempotent.
        let mut aa = ta.clone();
        aa.merge(&ta);
        assert_eq!(&aa, &ta);
        // Upper bound.
        assert!(ab.covers(&ta) && ab.covers(&tb));
    }
}

/// `covers` is a partial order compatible with merge: merging a covered
/// time is the identity.
#[test]
fn covers_consistent_with_merge() {
    let mut rng = SimRng::seed_from(0xD1FF_0005);
    for _ in 0..CASES {
        let ta = rand_vt(&mut rng, 3, 100);
        let tb = rand_vt(&mut rng, 3, 100);
        if ta.covers(&tb) {
            let mut m = ta.clone();
            m.merge(&tb);
            assert_eq!(m, ta, "merge with a covered time is identity");
        }
    }
}

/// Block partition: covers everything exactly once, contiguously, with
/// sizes differing by at most one.
#[test]
fn partition_properties() {
    let mut rng = SimRng::seed_from(0xD1FF_0006);
    for _ in 0..CASES {
        let parts = 1 + rng.below(39) as usize;
        let len = rng.below(5000) as usize;
        let mut prev_hi = 0;
        let mut min_size = usize::MAX;
        let mut max_size = 0;
        for owner in 0..parts {
            let (lo, hi) = cvm_dsm::ctx::partition_for(owner, parts, len);
            assert_eq!(lo, prev_hi);
            assert!(hi >= lo);
            min_size = min_size.min(hi - lo);
            max_size = max_size.max(hi - lo);
            prev_hi = hi;
        }
        assert_eq!(prev_hi, len);
        assert!(max_size - min_size <= 1, "balanced within one item");
    }
}
