//! Randomized edge-case tests for vector-timestamp comparison: partial
//! order on incomparable (concurrent) timestamps, strict domination, and
//! their interplay with `merge`. Driven by the deterministic `SimRng` so
//! failures reproduce exactly.

use cvm_dsm::VectorTime;
use cvm_sim::SimRng;

const CASES: usize = 300;

fn rand_vt(rng: &mut SimRng, len: usize, bound: u64) -> VectorTime {
    let mut t = VectorTime::new(len);
    for i in 0..len {
        t.advance(i, rng.below(bound) as u32);
    }
    t
}

/// A pair guaranteed concurrent: `a` is ahead on component 0, `b` on
/// component 1, arbitrary elsewhere.
fn concurrent_pair(rng: &mut SimRng, len: usize) -> (VectorTime, VectorTime) {
    let mut a = rand_vt(rng, len, 50);
    let mut b = a.clone();
    a.advance(0, a.get(0) + 1 + rng.below(5) as u32);
    b.advance(1, b.get(1) + 1 + rng.below(5) as u32);
    (a, b)
}

#[test]
fn incomparable_timestamps_cover_neither_way() {
    let mut rng = SimRng::seed_from(0x5EED_0001);
    for _ in 0..CASES {
        let (a, b) = concurrent_pair(&mut rng, 4);
        assert!(!a.covers(&b), "{a} should not cover {b}");
        assert!(!b.covers(&a), "{b} should not cover {a}");
        assert!(!a.dominates(&b) && !b.dominates(&a));
    }
}

#[test]
fn merge_of_incomparables_strictly_dominates_both() {
    let mut rng = SimRng::seed_from(0x5EED_0002);
    for _ in 0..CASES {
        let (a, b) = concurrent_pair(&mut rng, 4);
        let mut m = a.clone();
        m.merge(&b);
        assert!(m.dominates(&a), "lub of concurrent times is strictly above");
        assert!(m.dominates(&b));
    }
}

#[test]
fn dominates_is_antisymmetric_and_irreflexive() {
    let mut rng = SimRng::seed_from(0x5EED_0003);
    for _ in 0..CASES {
        let a = rand_vt(&mut rng, 4, 20);
        let b = rand_vt(&mut rng, 4, 20);
        assert!(
            !(a.dominates(&b) && b.dominates(&a)),
            "domination both ways: {a} vs {b}"
        );
        assert!(!a.dominates(&a), "domination is strict: {a}");
    }
}

#[test]
fn dominates_agrees_with_covers_and_inequality() {
    let mut rng = SimRng::seed_from(0x5EED_0004);
    for _ in 0..CASES {
        let a = rand_vt(&mut rng, 3, 10);
        let b = rand_vt(&mut rng, 3, 10);
        assert_eq!(a.dominates(&b), a.covers(&b) && a != b);
    }
}

#[test]
fn merge_is_idempotent_and_preserved_by_domination() {
    let mut rng = SimRng::seed_from(0x5EED_0005);
    for _ in 0..CASES {
        let a = rand_vt(&mut rng, 4, 100);
        let b = rand_vt(&mut rng, 4, 100);
        let mut m = a.clone();
        m.merge(&b);
        // Idempotent: merging again changes nothing.
        let mut mm = m.clone();
        mm.merge(&b);
        mm.merge(&a);
        assert_eq!(mm, m);
        // The lub never strictly dominates a time that already covers
        // the other operand.
        if a.covers(&b) {
            assert_eq!(m, a);
            assert!(!m.dominates(&a));
        }
    }
}

#[test]
fn advance_creates_strict_domination() {
    let mut rng = SimRng::seed_from(0x5EED_0006);
    for _ in 0..CASES {
        let a = rand_vt(&mut rng, 4, 100);
        let q = rng.below(4) as usize;
        let mut later = a.clone();
        later.advance(q, a.get(q) + 1);
        assert!(later.dominates(&a));
        assert!(!a.dominates(&later));
        // Advancing to a past value is a no-op, never a regression.
        let mut same = a.clone();
        same.advance(q, 0);
        assert_eq!(same, a);
    }
}
