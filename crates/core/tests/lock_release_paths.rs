//! Driver-level tests of the lock release policy (the paper's
//! unfair-but-fast preference for co-located waiters).
//!
//! Scenario engineered with staggered virtual-time work so arrival order
//! is deterministic: thread g0 (node 0) holds the lock while a *remote*
//! waiter (node 1) queues first and a *local* waiter (node 0) queues
//! second. Under the default policy the release must hand off locally
//! despite the remote's earlier request — and the remote must still
//! acquire eventually (the policy is unfair, not unsound).

use cvm_dsm::{CvmBuilder, CvmConfig};
use cvm_sim::SimDuration;

/// Runs the contention scenario; returns (acquisition events, local
/// handoffs, remote acquires). A hand-off is its own acquisition path in
/// the stats — not a `local_lock_acquires` — so the three threads'
/// acquires are split across all three counters.
fn run_contended(prefer_local: bool) -> (u64, u64, u64) {
    let mut cfg = CvmConfig::small(2, 2);
    cfg.prefer_local_lock_waiters = prefer_local;
    let mut b = CvmBuilder::new(cfg);
    let counter = b.alloc::<u64>(1);
    let report = b.run(move |ctx| {
        if ctx.global_id() == 0 {
            counter.write(ctx, 0, 0);
        }
        ctx.startup_done();
        // Node 0: g0, g1. Node 1: g2, g3 (g3 only synchronizes).
        match ctx.global_id() {
            0 => {
                // Acquire uncontended, then hold long enough for both
                // waiters to queue: the remote first, the local second.
                ctx.acquire(0);
                ctx.work(SimDuration::from_us(500));
                let v = counter.read(ctx, 0);
                counter.write(ctx, 0, v + 1);
                ctx.release(0);
            }
            2 => {
                // Remote waiter: requests while g0 holds, before g1.
                ctx.work(SimDuration::from_us(50));
                ctx.acquire(0);
                let v = counter.read(ctx, 0);
                counter.write(ctx, 0, v + 1);
                ctx.release(0);
            }
            1 => {
                // Local waiter: requests after the remote is queued.
                ctx.work(SimDuration::from_us(150));
                ctx.acquire(0);
                let v = counter.read(ctx, 0);
                counter.write(ctx, 0, v + 1);
                ctx.release(0);
            }
            _ => {}
        }
        ctx.barrier();
        let total = counter.read(ctx, 0);
        assert_eq!(total, 3, "an increment was lost");
    });
    (
        report.stats.local_lock_acquires
            + report.stats.remote_locks
            + report.stats.local_lock_handoffs,
        report.stats.local_lock_handoffs,
        report.stats.remote_locks,
    )
}

#[test]
fn release_prefers_local_waiter_over_earlier_remote() {
    let (acquires, handoffs, remote) = run_contended(true);
    assert_eq!(acquires, 3, "three threads acquired the lock");
    assert!(
        handoffs >= 1,
        "the release must hand off to the co-located waiter even though \
         the remote queued first (got {handoffs} handoffs)"
    );
    assert!(
        remote >= 1,
        "the remote waiter must still acquire eventually"
    );
}

#[test]
fn ablated_policy_serves_remote_first_without_handoff() {
    let (acquires, handoffs, remote) = run_contended(false);
    assert_eq!(acquires, 3, "three threads acquired the lock");
    assert_eq!(
        handoffs, 0,
        "with the preference ablated the release grants the earlier \
         remote; the local waiter is served by a re-request, not a handoff"
    );
    assert!(
        remote >= 2,
        "remote grant plus the node's re-request for its local waiter"
    );
}

/// The same scenario driven through the exploration hook: perturbing
/// scheduler picks must not change lock-queue integrity or the count.
#[test]
fn contended_locks_survive_schedule_perturbation() {
    for seed in [1u64, 2, 3] {
        let mut cfg = CvmConfig::small(2, 2);
        cfg.explore = Some(cvm_sim::ExploreSpec { seed, budget: 32 });
        let mut b = CvmBuilder::new(cfg);
        let counter = b.alloc::<u64>(1);
        let report = b.run(move |ctx| {
            if ctx.global_id() == 0 {
                counter.write(ctx, 0, 0);
            }
            ctx.startup_done();
            for _ in 0..4 {
                ctx.acquire(0);
                let v = counter.read(ctx, 0);
                counter.write(ctx, 0, v + 1);
                ctx.release(0);
            }
            ctx.barrier();
            let total = counter.read(ctx, 0);
            assert_eq!(total, 16, "an increment was lost under exploration");
        });
        assert_eq!(report.stats.barriers_crossed, 1);
    }
}
